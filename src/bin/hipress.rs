//! The `hipress` command-line interface: run throughput simulations,
//! inspect planner decisions, compile CompLL DSL programs, and browse
//! the model zoo without writing Rust.
//!
//! ```text
//! hipress models
//! hipress sim --model VGG19 --nodes 16 --strategy casync-ps --algorithm onebit
//! hipress run --nodes 4 --algorithm onebit --trace rt.json
//! hipress chaos --plan recoverable --seeds 4
//! hipress chaos --single --plan crash --victim 1
//! hipress bench --baseline BENCH_runtime.json --tolerance 25
//! hipress report BENCH_runtime.json
//! hipress compare --model Bert-large --nodes 16
//! hipress plan --model VGG19 --nodes 16 --strategy casync-ps --algorithm onebit
//! hipress compile path/to/algorithm.dsl
//! hipress trace-diff sim.json rt.json
//! ```

use hipress::compll::{param_values, CompiledAlgorithm};
use hipress::metrics::{names, view as metrics_view, MetricValue, Polarity};
use hipress::prelude::*;
use hipress::trace::view;
use hipress::trace::Trace;
use hipress::util::table::{Align, Table};
use hipress::util::units::{fmt_bytes, fmt_duration_ns};
use std::collections::HashMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        usage();
        return ExitCode::FAILURE;
    };
    let flags = parse_flags(cmd, &args[1..]);
    let result = match cmd.as_str() {
        "models" => cmd_models(),
        "sim" => cmd_sim(&flags),
        "run" => cmd_run(&flags),
        "node" => cmd_node(&flags),
        "chaos" => cmd_chaos(&flags),
        "bench" => cmd_bench(&flags),
        "serve" => cmd_serve(
            &flags,
            args.get(1)
                .filter(|a| !a.starts_with("--"))
                .map(String::as_str),
        ),
        "scrape" => cmd_scrape(
            &flags,
            args.get(1)
                .filter(|a| !a.starts_with("--"))
                .map(String::as_str),
            args.get(2)
                .filter(|a| !a.starts_with("--"))
                .map(String::as_str),
        ),
        "report" => cmd_report(
            &flags,
            args.get(1)
                .filter(|a| !a.starts_with("--"))
                .map(String::as_str),
        ),
        "postmortem" => cmd_postmortem(
            args.get(1)
                .filter(|a| !a.starts_with("--"))
                .map(String::as_str),
        ),
        "compare" => cmd_compare(&flags),
        "plan" => cmd_plan(&flags),
        "compile" => cmd_compile(args.get(1).map(String::as_str)),
        "trace-diff" => cmd_trace_diff(
            args.get(1)
                .filter(|a| !a.starts_with("--"))
                .map(String::as_str),
            args.get(2)
                .filter(|a| !a.starts_with("--"))
                .map(String::as_str),
        ),
        "lint" => cmd_lint(
            &flags,
            args.get(1)
                .filter(|a| !a.starts_with("--"))
                .map(String::as_str),
        ),
        "verify" => cmd_verify(&flags),
        "help" | "--help" | "-h" => {
            usage();
            Ok(())
        }
        other => Err(format!("unknown command '{other}'")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage() {
    eprintln!(
        "hipress — compression-aware data parallel DNN training (SOSP'21 reproduction)

USAGE:
  hipress models
      List the Table 6 model zoo.
  hipress sim --model <name> [--nodes N] [--local] [--strategy S] [--algorithm A] [--baseline] [--trace out.json]
      Simulate one training configuration.
  hipress run [--nodes N] [--backend threads|processes|sim] [--iters I] [--window W] [--strategy S] [--algorithm A] [--partitions K] [--elems E1,E2,...] [--seed S] [--cross-check] [--kill-node V] [--flight-dump FILE] [--trace out.json] [--json] [--listen ADDR] [--linger-ms MS]
      Synchronize synthetic gradients for real on CaSync-RT — one OS
      thread per node, or with --backend processes one OS *process*
      per node over a loopback TCP mesh — and print the measured
      runtime report. --iters/--window run multiple pipelined
      iterations; --cross-check requires the process backend
      bit-identical to threads (and the interpreter when unpipelined);
      --kill-node V kills worker V mid-protocol to prove the failure
      is diagnosed, not hung. On the process backend, --trace merges
      every worker's timeline into one clock-aligned trace (validated
      for cross-rank causality), --json folds every worker's metrics
      into one snapshot, and --flight-dump names a file that receives
      each rank's last protocol events if the run fails. --listen
      binds the embedded telemetry server for the duration of the run
      (plus --linger-ms): GET /metrics, /healthz, /report.json, and
      the /events NDJSON stream of per-iteration progress records,
      with the SLO watchdog counting anomalies into
      alerts_total{{kind}}.
  hipress run --elastic [--kill-rank R --kill-iter I] [--rejoin-after J] [--cross-check] [--trace out.json] [run flags]
      Membership-scripted run that *survives* losing a worker:
      --kill-rank/--kill-iter crash rank R at iteration I; the
      coordinator drains to the last fully-retired boundary, evicts
      the dead rank, re-plans chunk ownership over the survivors, and
      bumps the membership epoch — the run finishes every iteration.
      --rejoin-after J restarts the victim (`node --join`) and
      re-admits it at the next epoch boundary. --cross-check proves
      the continuation bit-identical to a fixed-membership run over
      the final member set. Backends: processes (default) or threads.
  hipress serve <BENCH.json> [--listen ADDR]
      Serve a previously written metrics snapshot file over the
      embedded telemetry server (/metrics as Prometheus text
      exposition, /healthz reporting done) until interrupted.
  hipress scrape <addr> <path> [--lines N]
      Fetch /metrics, /healthz, /report.json, or /events from a live
      telemetry server with the built-in std-TCP client and print the
      body; --lines stops the /events stream after N records.
  hipress postmortem <dump>
      Render a flight-recorder dump written by a failed process run:
      every rank's final protocol events interleaved on one
      clock-aligned timeline, ending at the diagnosed root cause.
  hipress node --connect <addr> --rank R (--nodes N | --join)
      (internal) One worker of a `--backend processes` run; spawned by
      the coordinator, never useful interactively. With --join,
      re-attach to a running elastic job and wait for admission at the
      next epoch boundary.
  hipress chaos [--nodes N] [--plan P] [--seeds K] [--policy wait|partial|abort] [--victim V] [--deadline-ms D] [--single] [--trace out.json]
      Synchronize on CaSync-RT over a fault-injecting fabric. By
      default, runs a survival matrix (plans x fault seeds) and checks
      every recoverable plan reproduces the fault-free bits exactly;
      exits non-zero on any violated expectation. With --single, runs
      one plan once: recoverable plans must come back bit-identical,
      unrecoverable ones (crash, blackhole) exit non-zero with a
      structured error naming the failed node.
  hipress bench [--nodes N] [--dir D] [--snapshot cur.json] [--baseline base.json] [--tolerance PCT] [--require-overlap] [--listen ADDR] [--linger-ms MS]
      Run the model x algorithm x strategy bench matrix on both the
      thread engine and the simulator; write schema-versioned
      BENCH_runtime.json and BENCH_sim.json snapshots to --dir
      (default .). With --baseline, diff the matching current snapshot
      (a kind=sim baseline gates the deterministic simulator numbers,
      any other the measured wall clocks) and exit non-zero on any
      metric regressed beyond --tolerance percent (default 25); with
      --snapshot, gate that file instead of re-running the matrix.
      With --require-overlap, instead gate that pipelined iterations
      (window 16) beat serial ones (window 1) on median wall time,
      running real OS processes over the loopback TCP mesh.
  hipress report <BENCH.json> [--json | --prom]
      Render a metrics snapshot as a sparkline/table dashboard, or
      re-emit it as canonical JSON / Prometheus text exposition.
  hipress compare --model <name> [--nodes N] [--local]
      Simulate HiPress against all baselines.
  hipress plan --model <name> [--nodes N] [--strategy S] [--algorithm A]
      Show the selective compression & partitioning plan per gradient.
  hipress compile <file.dsl>
      Compile a CompLL DSL program; print its LoC report and CUDA output.
  hipress lint [file.dsl] [--strategy S] [--algorithm A] [--nodes N]
      Statically verify CaSync task graphs across the strategy x
      algorithm x cluster matrix — each CaSync graph additionally as a
      pipelined composition at windows 1, 2, and 4 — and dataflow-check
      the shipped CompLL programs; with a file, dataflow-check that
      program instead.
  hipress verify [--mutant M]
      Exhaust the small-scope model-checking matrix over the CaSync-RT
      wire/FT protocol (the runtime's real state machines) plus the
      elastic epoch-transition matrix (drain / evict / re-plan /
      rejoin interleavings) and print per-scenario exploration
      statistics. With --mutant, seed a protocol defect; the checker
      must refute it with a counterexample trace, and the command
      exits non-zero.
  hipress trace-diff <a.json> <b.json>
      Compare two exported traces (e.g. a simulated vs a measured run
      of one plan): per-category latency table plus side-by-side
      utilization bars.

FLAGS:
  --model      VGG19 | ResNet50 | UGATIT | UGATIT-light | Bert-base | Bert-large | LSTM | Transformer
  --nodes      cluster size (default 16; `run` defaults to 4, `bench` to 3)
  --json       (`sim`/`run`) dump the report as a metrics snapshot JSON
               instead of the human-readable summary
  --dir        (`bench`) directory for BENCH_*.json snapshots (default .)
  --snapshot   (`bench`) gate an existing snapshot file instead of re-running
  --baseline   (`bench`) baseline BENCH_*.json for the perf-regression gate
  --tolerance  (`bench`) regression tolerance in percent (default 25)
  --local      use the 1080Ti/56Gbps local-cluster preset (default: EC2 V100/100Gbps)
  --strategy   casync-ps | casync-ring | byteps | ring (default casync-ps)
  --algorithm  none | onebit | tbq | terngrad[:bits] | dgc[:rate] | graddrop[:rate] (default onebit)
  --baseline   run the strategy with its baseline runtime (no CaSync optimizations)
  --trace      export a Chrome trace-event JSON (chrome://tracing, ui.perfetto.dev)
               and print utilization bars + per-category latencies
  --partitions gradient partition count for `run` (default 2)
  --elems      comma-separated gradient element counts for `run` (default 65536,4096,512)
  --seed       stochastic-codec seed for `run` (default 1)
  --backend    (`run`) threads | processes | sim (default threads)
  --iters      (`run`) iterations to run back to back (default 1)
  --window     (`run`) max iterations in flight at once (default 1)
  --cross-check (`run`) require processes bit-identical to threads
  --kill-node  (`run`) kill this worker mid-protocol (processes only)
  --flight-dump (`run`) write every rank's flight-recorder ring here on
               failure (processes only); render with `hipress postmortem`
  --listen     (`run`/`bench`/`serve`) bind the embedded telemetry server
               here (e.g. 127.0.0.1:0 for an ephemeral port); the bound
               address is printed as `telemetry: listening on ...`
  --linger-ms  (`run`/`bench`) keep the telemetry server up this long
               after the run retires so scrapers can collect the final
               state (default 0)
  --lines      (`scrape`) stop a streaming endpoint after N lines
  --plan       (`chaos`) none | recoverable | drop-storm | corrupt-storm |
               stall[:ms] | crash[:at-task] | blackhole
               (default: the three survivable storm plans)
  --seeds      (`chaos`) fault-plan seeds per plan in matrix mode (default 4)
  --policy     (`chaos`) straggler degradation: wait | partial | abort (default wait)
  --victim     (`chaos`) node the stall/crash/blackhole plans target (default 1)
  --deadline-ms (`chaos`) hard receive deadline per node (default 8000)
  --single     (`chaos`) run one plan once and propagate its outcome
  --elastic    (`run`) membership-scripted elastic run (see above)
  --kill-rank  (`run --elastic`) the rank to crash (with --kill-iter)
  --kill-iter  (`run --elastic`) the global iteration the crash fires at
  --rejoin-after (`run --elastic`) restart the victim and re-admit it at
               the first epoch boundary at or after this iteration
  --mutant     (`verify`) seed a protocol defect: skip-dedup | dedup-before-verify |
               apply-before-verify | retry-without-bound | drop-heartbeat |
               forget-rescale; elastic: skip-drain | accept-stale-epoch |
               reuse-dead-owner | admit-future-join"
    );
}

fn parse_flags(cmd: &str, args: &[String]) -> HashMap<String, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if let Some(name) = a.strip_prefix("--") {
            // `--baseline` is a boolean runtime toggle for `sim` but
            // takes a snapshot path for `bench`.
            let boolean = matches!(
                name,
                "local"
                    | "no-selective"
                    | "json"
                    | "prom"
                    | "single"
                    | "cross-check"
                    | "require-overlap"
                    | "join"
                    | "elastic"
            ) || (name == "baseline" && cmd != "bench");
            let takes_value = !boolean;
            if takes_value && i + 1 < args.len() {
                flags.insert(name.to_string(), args[i + 1].clone());
                i += 2;
            } else {
                flags.insert(name.to_string(), "true".to_string());
                i += 1;
            }
        } else {
            i += 1;
        }
    }
    flags
}

fn parse_model(flags: &HashMap<String, String>) -> Result<DnnModel, String> {
    let name = flags
        .get("model")
        .ok_or_else(|| "--model is required".to_string())?;
    DnnModel::by_name(name).ok_or_else(|| format!("unknown model '{name}' (try `hipress models`)"))
}

fn parse_cluster(flags: &HashMap<String, String>) -> Result<ClusterConfig, String> {
    let nodes: usize = flags
        .get("nodes")
        .map(|n| n.parse().map_err(|_| format!("bad --nodes '{n}'")))
        .transpose()?
        .unwrap_or(16);
    Ok(if flags.contains_key("local") {
        ClusterConfig::local(nodes)
    } else {
        ClusterConfig::ec2(nodes)
    })
}

fn parse_strategy(flags: &HashMap<String, String>) -> Result<Strategy, String> {
    match flags.get("strategy").map(String::as_str) {
        None | Some("casync-ps") => Ok(Strategy::CaSyncPs),
        Some("casync-ring") => Ok(Strategy::CaSyncRing),
        Some("byteps") => Ok(Strategy::BytePs),
        Some("ring") => Ok(Strategy::HorovodRing),
        Some(other) => Err(format!("unknown strategy '{other}'")),
    }
}

fn parse_algorithm(flags: &HashMap<String, String>) -> Result<Algorithm, String> {
    let spec = flags
        .get("algorithm")
        .map(String::as_str)
        .unwrap_or("onebit");
    let (name, param) = match spec.split_once(':') {
        Some((n, p)) => (n, Some(p)),
        None => (spec, None),
    };
    match (name, param) {
        ("none", _) => Ok(Algorithm::None),
        ("onebit", _) => Ok(Algorithm::OneBit),
        ("tbq", p) => Ok(Algorithm::Tbq {
            tau: p
                .map(|v| v.parse().map_err(|_| "bad tau"))
                .transpose()?
                .unwrap_or(0.05),
        }),
        ("terngrad", p) => Ok(Algorithm::TernGrad {
            bitwidth: p
                .map(|v| v.parse().map_err(|_| "bad bitwidth"))
                .transpose()?
                .unwrap_or(2),
        }),
        ("dgc", p) => Ok(Algorithm::Dgc {
            rate: p
                .map(|v| v.parse().map_err(|_| "bad rate"))
                .transpose()?
                .unwrap_or(0.001),
        }),
        ("graddrop", p) => Ok(Algorithm::GradDrop {
            rate: p
                .map(|v| v.parse().map_err(|_| "bad rate"))
                .transpose()?
                .unwrap_or(0.01),
        }),
        (other, _) => Err(format!("unknown algorithm '{other}'")),
    }
}

fn cmd_models() -> Result<(), String> {
    let mut table = Table::new(&[
        ("model", Align::Left),
        ("total", Align::Right),
        ("max gradient", Align::Right),
        ("#gradients", Align::Right),
        ("V100 samples/s", Align::Right),
    ]);
    for m in DnnModel::all() {
        let spec = m.spec();
        table.row(vec![
            m.name().to_string(),
            fmt_bytes(spec.total_bytes()),
            fmt_bytes(spec.max_gradient_bytes()),
            spec.num_gradients().to_string(),
            format!(
                "{:.1}",
                spec.compute(GpuClass::V100).single_gpu_throughput()
            ),
        ]);
    }
    print!("{table}");
    Ok(())
}

fn job_from_flags(flags: &HashMap<String, String>) -> Result<TrainingJob, String> {
    let model = parse_model(flags)?;
    let cluster = parse_cluster(flags)?;
    let strategy = parse_strategy(flags)?;
    let algorithm = parse_algorithm(flags)?;
    let mut job = if flags.contains_key("baseline") || !strategy.is_casync() {
        let cluster = if strategy == Strategy::BytePs && !flags.contains_key("local") {
            cluster.with_tcp()
        } else {
            cluster
        };
        TrainingJob::baseline(model, cluster, strategy)
    } else {
        TrainingJob::hipress(model, cluster, strategy)
    };
    job = job.with_algorithm(algorithm);
    if flags.contains_key("no-selective") {
        job.selective = false;
    }
    Ok(job)
}

fn cmd_sim(flags: &HashMap<String, String>) -> Result<(), String> {
    let job = job_from_flags(flags)?;
    let tracer = flags.get("trace").map(|_| Tracer::new("sim"));
    let r = match &tracer {
        Some(tr) => simulate_with_tracer(&job, tr),
        None => simulate(&job),
    }
    .map_err(|e| e.to_string())?;
    if flags.contains_key("json") {
        let registry = Registry::new();
        r.record_metrics(&registry.scope(&[
            ("model", job.model.name()),
            ("algorithm", &job.algorithm.label()),
            ("strategy", job.strategy.label()),
        ]));
        let snap = registry
            .snapshot()
            .with_meta("kind", "sim")
            .with_meta("nodes", &job.cluster.nodes.to_string());
        println!("{}", snap.to_json());
        if let (Some(path), Some(tr)) = (flags.get("trace"), tracer) {
            export_trace(&tr.finish(), path)?;
        }
        return Ok(());
    }
    println!("model:              {}", job.model.name());
    println!(
        "cluster:            {} nodes x {} {} ({:.0} Gbps)",
        job.cluster.nodes,
        job.cluster.gpus_per_node,
        job.cluster.gpu.name,
        job.cluster.link.bandwidth.as_gbps()
    );
    println!("strategy:           {}", job.strategy.label());
    println!("algorithm:          {}", job.algorithm.label());
    println!("iteration:          {}", fmt_duration_ns(r.iteration_ns));
    println!("  compute:          {}", fmt_duration_ns(r.compute_ns));
    println!(
        "  sync finish:      {} (from backward start)",
        fmt_duration_ns(r.sync_finish_ns)
    );
    println!("throughput:         {:.0} samples/s", r.throughput);
    println!("scaling efficiency: {:.3}", r.scaling_efficiency);
    println!(
        "communication:      {:.1}% of iteration",
        r.comm_ratio * 100.0
    );
    println!(
        "coordinator:        {} link batches, {} batched kernel launches",
        r.stats.link_flushes, r.stats.comp_batch_launches
    );
    if let (Some(path), Some(tr)) = (flags.get("trace"), tracer) {
        export_trace(&tr.finish(), path)?;
    }
    Ok(())
}

/// Synchronizes synthetic gradients on the thread engine and prints
/// the measured report (plus, with `--trace`, the exported timeline).
fn cmd_run(flags: &HashMap<String, String>) -> Result<(), String> {
    use hipress::tensor::synth::{generate, GradientShape};
    use hipress::tensor::Tensor;
    let nodes: usize = flags
        .get("nodes")
        .map(|n| n.parse().map_err(|_| format!("bad --nodes '{n}'")))
        .transpose()?
        .unwrap_or(4);
    let strategy = parse_strategy(flags)?;
    let algorithm = parse_algorithm(flags)?;
    let partitions: usize = flags
        .get("partitions")
        .map(|k| k.parse().map_err(|_| format!("bad --partitions '{k}'")))
        .transpose()?
        .unwrap_or(2);
    let seed: u64 = flags
        .get("seed")
        .map(|s| s.parse().map_err(|_| format!("bad --seed '{s}'")))
        .transpose()?
        .unwrap_or(1);
    let elems: Vec<usize> = match flags.get("elems") {
        Some(spec) => spec
            .split(',')
            .map(|e| e.trim().parse().map_err(|_| format!("bad --elems '{e}'")))
            .collect::<Result<_, _>>()?,
        None => vec![65536, 4096, 512],
    };
    let grads: Vec<Vec<Tensor>> = (0..nodes)
        .map(|w| {
            elems
                .iter()
                .enumerate()
                .map(|(g, &n)| {
                    generate(
                        n,
                        GradientShape::Gaussian { std_dev: 1.0 },
                        (w * 1000 + g) as u64,
                    )
                })
                .collect()
        })
        .collect();
    let iters: u32 = flags
        .get("iters")
        .map(|v| v.parse().map_err(|_| format!("bad --iters '{v}'")))
        .transpose()?
        .unwrap_or(1);
    let window: u32 = flags
        .get("window")
        .map(|v| v.parse().map_err(|_| format!("bad --window '{v}'")))
        .transpose()?
        .unwrap_or(1);
    if flags.contains_key("elastic") {
        return cmd_run_elastic(
            flags, strategy, algorithm, partitions, seed, &grads, iters, window,
        );
    }
    let backend = match flags.get("backend").map(String::as_str) {
        None | Some("threads") => Backend::Threads(nodes),
        Some("processes") => Backend::Processes(nodes),
        Some("sim") | Some("simulator") => Backend::Simulator,
        Some(other) => return Err(format!("unknown backend '{other}'")),
    };
    let kill_node: Option<usize> = flags
        .get("kill-node")
        .map(|v| v.parse().map_err(|_| format!("bad --kill-node '{v}'")))
        .transpose()?;
    let flight_dump = flags.get("flight-dump").map(std::path::PathBuf::from);
    let mut base = HiPress::new(strategy)
        .algorithm(algorithm)
        .partitions(partitions)
        .seed(seed)
        .iterations(iters)
        .pipeline_window(window);
    if kill_node.is_some() || flight_dump.is_some() {
        base = base.process_config(ProcessConfig {
            kill_node,
            flight_dump,
            ..ProcessConfig::default()
        });
    }

    // `--cross-check`: run the same job on real OS processes over the
    // loopback TCP mesh and on in-process threads, and require
    // bit-identical flows (plus the interpreter when unpipelined).
    if flags.contains_key("cross-check") {
        let procs = base
            .clone()
            .backend(Backend::Processes(nodes))
            .sync(&grads)
            .map_err(|e| format!("processes backend: {e}"))?;
        let threads = base
            .clone()
            .backend(Backend::Threads(nodes))
            .sync(&grads)
            .map_err(|e| format!("threads backend: {e}"))?;
        for (a, b) in threads.flows.iter().zip(&procs.flows) {
            if a.flow != b.flow || a.per_node != b.per_node {
                return Err(format!(
                    "flow {} diverged between threads and processes",
                    a.flow
                ));
            }
        }
        let mut against = "threads".to_string();
        if iters == 1 && window == 1 {
            let sim = base
                .clone()
                .backend(Backend::Simulator)
                .sync(&grads)
                .map_err(|e| format!("simulator backend: {e}"))?;
            for (a, b) in sim.flows.iter().zip(&procs.flows) {
                if a.flow != b.flow || a.per_node != b.per_node {
                    return Err(format!(
                        "flow {} diverged between interpreter and processes",
                        a.flow
                    ));
                }
            }
            against = "threads and the interpreter".into();
        }
        let report = procs.report.expect("process backend always reports");
        println!(
            "cross-check OK: {} process(es) over loopback TCP bit-identical to {against} \
             ({} / {}, {} gradients, {iters} iteration(s), window {window})",
            nodes,
            strategy.label(),
            algorithm.label(),
            elems.len(),
        );
        println!(
            "fabric: {} frames, {} framed bytes ({} payload), {} retransmits",
            report.fabric_frames,
            report.fabric_bytes_framed,
            report.fabric_bytes_payload,
            report.fabric_retransmits
        );
        return Ok(());
    }

    if backend == Backend::Simulator && (flags.contains_key("trace") || flags.contains_key("json"))
    {
        return Err("--trace/--json need a real backend: threads or processes".into());
    }
    let listen = flags.get("listen");
    if backend == Backend::Simulator && listen.is_some() {
        return Err("--listen needs a real backend: threads or processes".into());
    }
    let linger_ms: u64 = flags
        .get("linger-ms")
        .map(|v| v.parse().map_err(|_| format!("bad --linger-ms '{v}'")))
        .transpose()?
        .unwrap_or(0);
    let tracer = flags.get("trace").map(|_| Tracer::new("casync-rt"));
    let want_json = flags.contains_key("json");
    // One registry feeds both the --json snapshot and the telemetry
    // server's /metrics endpoint (where alerts_total{kind} also lands).
    let registry = (want_json || listen.is_some()).then(Registry::new);
    let mut builder = base.backend(backend);
    if let Some(tr) = &tracer {
        builder = builder.trace(tr);
    }
    if let Some(reg) = &registry {
        builder = builder.metrics(&reg.root());
    }
    let hub = if let (Some(addr), Some(reg)) = (listen, &registry) {
        let hub = Telemetry::new(reg.clone(), WatchConfig::default());
        let server = hipress::obs::Server::bind(addr, hub.clone()).map_err(|e| e.to_string())?;
        println!("telemetry: listening on {}", server.addr());
        builder = builder.telemetry(&hub);
        Some(hub)
    } else {
        None
    };
    let out = builder.sync(&grads).map_err(|e| e.to_string())?;
    if let (Some(hub), Some(report)) = (&hub, &out.report) {
        // `/report.json` flips from {"pending":true} to the real thing.
        hub.set_report_json(report.to_json());
    }
    if want_json {
        let reg = registry.as_ref().expect("--json implies a registry");
        let snap = reg
            .snapshot()
            .with_meta("kind", "runtime")
            .with_meta("nodes", &nodes.to_string())
            .with_meta("seed", &seed.to_string());
        println!("{}", snap.to_json());
    } else {
        let engine = match backend {
            Backend::Simulator => "the interpreter",
            Backend::Threads(_) => "CaSync-RT (threads)",
            Backend::Processes(_) => "CaSync-RT (processes over loopback TCP)",
        };
        println!(
            "synchronized {} gradients x {nodes} nodes on {engine} ({} / {})",
            elems.len(),
            strategy.label(),
            algorithm.label()
        );
        println!("replicas consistent: {}", out.replicas_consistent());
        if let Some(report) = &out.report {
            println!("{report}");
        }
    }
    if let (Some(hub), Some(tr)) = (&hub, &tracer) {
        // Watchdog verdicts become trace instants: the "alert"
        // category is foreign to `RuntimeReport::from_trace`, so the
        // trace/report parity check below still holds.
        let alerts = hub.alerts();
        if !alerts.is_empty() {
            let track = tr.thread_track("watchdog");
            for a in &alerts {
                tr.instant(
                    track,
                    a.kind.as_label(),
                    "alert",
                    a.ts_ns,
                    &[
                        ("node", u64::from(a.node)),
                        ("iter", u64::from(a.iter)),
                        ("observed", a.observed),
                        ("threshold", a.threshold),
                    ],
                );
            }
        }
    }
    if let (Some(path), Some(tr)) = (flags.get("trace"), tracer) {
        let report = out.report.as_ref().expect("real backends report");
        let trace = tr.finish();
        // The trace is a second bookkeeping of the same run; deriving
        // the report from it must reproduce the measured one exactly.
        if &RuntimeReport::from_trace(&trace) != report {
            return Err("trace-derived report diverged from the measured one".into());
        }
        if matches!(backend, Backend::Processes(_)) {
            // The merged timeline stitched worker clocks together;
            // prove the alignment by checking causality: no message
            // may arrive before (its uncertainty window says) it was
            // sent.
            match hipress::runtime::validate_clock_monotonicity(&trace) {
                Ok(checked) => println!(
                    "clock alignment OK: {checked} cross-rank send\u{2192}recv pair(s) causally ordered"
                ),
                Err(violations) => {
                    for v in &violations {
                        eprintln!("clock violation: {v}");
                    }
                    return Err(format!(
                        "{} cross-rank event(s) violate the clock-aligned ordering",
                        violations.len()
                    ));
                }
            }
        }
        export_trace(&trace, path)?;
    }
    if let Some(hub) = &hub {
        // Done first, then linger: /events streams drain and
        // terminate while late scrapers still see the final
        // /metrics, /healthz, and /report.json.
        hub.mark_done();
        if linger_ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(linger_ms));
        }
    }
    Ok(())
}

/// The `hipress run --elastic` driver: a membership-scripted run that
/// survives a scripted rank loss (`--kill-rank R --kill-iter I`) by
/// draining, evicting, re-planning over the survivors, and bumping
/// the membership epoch; `--rejoin-after J` restarts the victim and
/// re-admits it at the next epoch boundary. `--cross-check` compares
/// the final flows bit for bit against a fixed-membership run over
/// the expected final member set.
#[allow(clippy::too_many_arguments)]
fn cmd_run_elastic(
    flags: &HashMap<String, String>,
    strategy: Strategy,
    algorithm: Algorithm,
    partitions: usize,
    seed: u64,
    grads: &[Vec<hipress::tensor::Tensor>],
    iters: u32,
    window: u32,
) -> Result<(), String> {
    use hipress::chaos::MembershipPlan;
    use hipress::runtime::{
        run_elastic_processes, run_elastic_threaded, run_threaded_workers, Instruments,
    };
    let kill_rank: Option<u32> = flags
        .get("kill-rank")
        .map(|v| v.parse().map_err(|_| format!("bad --kill-rank '{v}'")))
        .transpose()?;
    let kill_iter: Option<u32> = flags
        .get("kill-iter")
        .map(|v| v.parse().map_err(|_| format!("bad --kill-iter '{v}'")))
        .transpose()?;
    let rejoin_after: Option<u32> = flags
        .get("rejoin-after")
        .map(|v| v.parse().map_err(|_| format!("bad --rejoin-after '{v}'")))
        .transpose()?;
    let plan = match (kill_rank, kill_iter) {
        (Some(r), Some(i)) => match rejoin_after {
            Some(j) => MembershipPlan::crash_then_rejoin(r, i, j),
            None => MembershipPlan::crash(r, i),
        },
        (None, None) => {
            if rejoin_after.is_some() {
                return Err("--rejoin-after needs --kill-rank and --kill-iter".into());
            }
            MembershipPlan::none()
        }
        _ => return Err("--kill-rank and --kill-iter go together".into()),
    };
    let pcfg = PipelineConfig {
        iterations: iters,
        window,
        ..Default::default()
    };
    let rconf = RuntimeConfig::default();
    let tracer = flags.get("trace").map(|_| Tracer::new("casync-rt"));
    let instruments = Instruments {
        tracer: tracer.as_ref(),
        ..Instruments::default()
    };
    let out = match flags.get("backend").map(String::as_str) {
        None | Some("processes") => run_elastic_processes(
            strategy,
            algorithm,
            partitions,
            grads,
            seed,
            &rconf,
            &pcfg,
            &ProcessConfig::default(),
            &plan,
            instruments,
        ),
        Some("threads") => run_elastic_threaded(
            strategy,
            algorithm,
            partitions,
            grads,
            seed,
            &rconf,
            &pcfg,
            &plan,
            instruments,
        ),
        Some(other) => {
            return Err(format!(
                "--elastic needs a real backend (threads or processes), not '{other}'"
            ))
        }
    }
    .map_err(|e| e.to_string())?;

    let report = &out.report;
    let final_members = report
        .membership
        .last()
        .map(|m| m.members.clone())
        .unwrap_or_default();
    println!(
        "elastic: {} worker(s), {} epoch(s), {} eviction(s){}, final membership {} node(s)",
        grads.len(),
        report.membership.len(),
        report.evicted.len(),
        if report.evicted.is_empty() {
            String::new()
        } else {
            format!(
                " (evicted rank {})",
                report
                    .evicted
                    .iter()
                    .map(|r| r.to_string())
                    .collect::<Vec<_>>()
                    .join(", rank ")
            )
        },
        final_members.len(),
    );
    println!("{report}");

    if flags.contains_key("cross-check") {
        // The fixed-membership reference: the full member set when the
        // run ends at full strength (no kill, or kill + rejoin), the
        // survivor set otherwise. Bit-identical flows or bust.
        let reference: Vec<Vec<hipress::tensor::Tensor>> = if rejoin_after.is_some() {
            grads.to_vec()
        } else if let Some(victim) = kill_rank {
            grads
                .iter()
                .enumerate()
                .filter(|(w, _)| *w as u32 != victim)
                .map(|(_, g)| g.clone())
                .collect()
        } else {
            grads.to_vec()
        };
        let fixed = run_threaded_workers(
            strategy,
            algorithm,
            partitions,
            &reference,
            seed,
            &rconf,
            &pcfg,
            &ProcessConfig::default(),
            Instruments::default(),
        )
        .map_err(|e| format!("fixed-membership reference run: {e}"))?;
        if out.flows.len() != fixed.flows.len() {
            return Err("elastic run and fixed-membership reference disagree on flow count".into());
        }
        for (a, b) in out.flows.iter().zip(&fixed.flows) {
            if a.flow != b.flow || a.per_node != b.per_node {
                return Err(format!(
                    "flow {} diverged between the elastic run and the fixed-membership reference",
                    a.flow
                ));
            }
        }
        println!(
            "cross-check OK: elastic continuation bit-identical to the fixed-membership run \
             over {} node(s)",
            reference.len()
        );
    }

    if let (Some(path), Some(tr)) = (flags.get("trace"), tracer) {
        let trace = tr.finish();
        // The membership timeline is double-booked: once in the
        // report, once as trace instants. They must agree.
        let derived = RuntimeReport::from_trace(&trace);
        if derived.membership != report.membership || derived.evicted != report.evicted {
            return Err("trace-derived membership timeline diverged from the reported one".into());
        }
        export_trace(&trace, path)?;
    }
    Ok(())
}

/// Renders a flight-recorder dump written by a failed
/// `--backend processes` run: every rank's last protocol events on
/// one clock-aligned timeline, ending at the diagnosed root cause.
fn cmd_postmortem(file: Option<&str>) -> Result<(), String> {
    use hipress::fabric::WireMsg as _;
    let path = file.ok_or(
        "postmortem: a dump file is required (a failed `hipress run --backend processes \
         --flight-dump FILE` writes one)",
    )?;
    let bytes = std::fs::read(path).map_err(|e| format!("read {path}: {e}"))?;
    let dump = hipress::runtime::PostmortemDump::from_bytes(&bytes)
        .map_err(|e| format!("parse {path}: {e:?}"))?;
    print!("{}", dump.render());
    Ok(())
}

/// The `hipress node` worker entry point: dialed back into the
/// coordinator that spawned us ([`Backend::Processes`] re-executes the
/// current binary). Never useful interactively.
fn cmd_node(flags: &HashMap<String, String>) -> Result<(), String> {
    let connect = flags
        .get("connect")
        .ok_or("node: --connect <addr> is required")?;
    let rank: usize = flags
        .get("rank")
        .ok_or("node: --rank is required")?
        .parse()
        .map_err(|_| "bad --rank".to_string())?;
    if flags.contains_key("join") {
        // A restarted worker re-attaching to a running elastic job:
        // the coordinator's Welcome carries the membership, so
        // `--nodes` is not needed (and would be stale anyway).
        return hipress::runtime::join_main(connect, rank).map_err(|e| e.to_string());
    }
    let nodes: usize = flags
        .get("nodes")
        .ok_or("node: --nodes is required (or --join to re-attach)")?
        .parse()
        .map_err(|_| "bad --nodes".to_string())?;
    hipress::runtime::node_main(connect, rank, nodes).map_err(|e| e.to_string())
}

/// One chaos run's classification for the survival table.
enum ChaosOutcome {
    /// Completed bit-identical to the fault-free run.
    Exact,
    /// Completed, but degradation rescaled some aggregates.
    Degraded,
    /// Completed yet silently diverged — always a violation.
    Diverged,
    /// Unwound with a structured failure.
    Failed(String),
}

fn cmd_chaos(flags: &HashMap<String, String>) -> Result<(), String> {
    use hipress::chaos::FaultPlan;
    use hipress::tensor::synth::{generate, GradientShape};
    use hipress::tensor::Tensor;
    use std::time::Duration;
    let nodes: usize = flags
        .get("nodes")
        .map(|n| n.parse().map_err(|_| format!("bad --nodes '{n}'")))
        .transpose()?
        .unwrap_or(3);
    let strategy = parse_strategy(flags)?;
    let algorithm = parse_algorithm(flags)?;
    let seed: u64 = flags
        .get("seed")
        .map(|s| s.parse().map_err(|_| format!("bad --seed '{s}'")))
        .transpose()?
        .unwrap_or(1);
    let victim: usize = flags
        .get("victim")
        .map(|v| v.parse().map_err(|_| format!("bad --victim '{v}'")))
        .transpose()?
        .unwrap_or(1);
    if victim >= nodes {
        return Err(format!("--victim {victim} out of range for {nodes} nodes"));
    }
    let deadline_ms: u64 = flags
        .get("deadline-ms")
        .map(|d| d.parse().map_err(|_| format!("bad --deadline-ms '{d}'")))
        .transpose()?
        .unwrap_or(8000);
    let policy = match flags.get("policy").map(String::as_str) {
        None | Some("wait") => DegradePolicy::Wait,
        Some("partial") => DegradePolicy::Partial,
        Some("abort") => DegradePolicy::Abort,
        Some(other) => Err(format!("unknown policy '{other}'"))?,
    };
    let ft = FaultTolerance {
        recv_deadline: Duration::from_millis(deadline_ms),
        retry_budget: 8,
        base_backoff: Duration::from_millis(3),
        max_backoff: Duration::from_millis(100),
        straggler_factor: 4.0,
        straggler_floor: Duration::from_millis(100),
        policy,
    };
    let elems: Vec<usize> = match flags.get("elems") {
        Some(spec) => spec
            .split(',')
            .map(|e| e.trim().parse().map_err(|_| format!("bad --elems '{e}'")))
            .collect::<Result<_, _>>()?,
        None => vec![4096, 512],
    };
    let grads: Vec<Vec<Tensor>> = (0..nodes)
        .map(|w| {
            elems
                .iter()
                .enumerate()
                .map(|(g, &n)| {
                    generate(
                        n,
                        GradientShape::Gaussian { std_dev: 1.0 },
                        (w * 1000 + g) as u64,
                    )
                })
                .collect()
        })
        .collect();
    let builder = HiPress::new(strategy)
        .algorithm(algorithm)
        .partitions(2)
        .seed(seed)
        .backend(Backend::Threads(nodes));
    let clean = builder.sync(&grads).map_err(|e| e.to_string())?;
    let build_plan = |kind: &str, plan_seed: u64| -> Result<FaultPlan, String> {
        let (name, param) = match kind.split_once(':') {
            Some((n, p)) => (n, Some(p)),
            None => (kind, None),
        };
        Ok(match name {
            "none" => FaultPlan::none(plan_seed),
            "recoverable" => FaultPlan::recoverable(plan_seed),
            "drop-storm" => FaultPlan::drop_storm(plan_seed),
            "corrupt-storm" => FaultPlan::corruption_storm(plan_seed),
            "stall" => {
                let ms: u64 = param
                    .map(|p| p.parse().map_err(|_| format!("bad stall ms '{p}'")))
                    .transpose()?
                    .unwrap_or(400);
                FaultPlan::stall(plan_seed, victim, Duration::from_millis(ms))
            }
            "crash" => {
                let at: usize = param
                    .map(|p| p.parse().map_err(|_| format!("bad crash task '{p}'")))
                    .transpose()?
                    .unwrap_or(1);
                FaultPlan::crash(plan_seed, victim, at)
            }
            "blackhole" => FaultPlan::blackhole(plan_seed, victim, (victim + 1) % nodes),
            other => Err(format!("unknown plan '{other}'"))?,
        })
    };
    let run_one = |plan: &FaultPlan| -> (ChaosOutcome, RuntimeReport) {
        match builder.clone().chaos(plan).fault_tolerance(ft).sync(&grads) {
            Err(e) => (
                ChaosOutcome::Failed(e.to_string()),
                RuntimeReport::default(),
            ),
            Ok(out) => {
                let report = out.report.expect("thread backend always reports");
                let identical = clean
                    .flows
                    .iter()
                    .zip(&out.flows)
                    .all(|(a, b)| a.per_node == b.per_node);
                let outcome = if identical {
                    ChaosOutcome::Exact
                } else if report.faults.degraded_chunks > 0 {
                    ChaosOutcome::Degraded
                } else {
                    ChaosOutcome::Diverged
                };
                (outcome, report)
            }
        }
    };

    if flags.contains_key("single") {
        let kind = flags
            .get("plan")
            .map(String::as_str)
            .unwrap_or("recoverable");
        let plan = build_plan(kind, seed)?;
        let recoverable = plan.is_recoverable(ft.retry_budget);
        // Propagate protocol failures to the exit code: the
        // structured error (naming node/peer/task) goes to stderr.
        let out = builder
            .clone()
            .chaos(&plan)
            .fault_tolerance(ft)
            .sync(&grads)
            .map_err(|e| e.to_string())?;
        let report = out.report.expect("thread backend always reports");
        let identical = clean
            .flows
            .iter()
            .zip(&out.flows)
            .all(|(a, b)| a.per_node == b.per_node);
        println!(
            "chaos plan '{kind}' (fault seed {seed}) survived on {nodes} nodes ({} / {})",
            strategy.label(),
            algorithm.label()
        );
        println!("bit-identical to fault-free: {identical}");
        println!("{report}");
        if recoverable && policy != DegradePolicy::Partial && !identical {
            return Err("recoverable plan did not reproduce the fault-free bits".into());
        }
        if let Some(path) = flags.get("trace") {
            // Re-run traced so the timeline carries the same plan.
            let tracer = Tracer::new("casync-chaos");
            builder
                .clone()
                .chaos(&plan)
                .fault_tolerance(ft)
                .trace(&tracer)
                .sync(&grads)
                .map_err(|e| e.to_string())?;
            export_trace(&tracer.finish(), path)?;
        }
        return Ok(());
    }

    let seeds: u64 = flags
        .get("seeds")
        .map(|s| s.parse().map_err(|_| format!("bad --seeds '{s}'")))
        .transpose()?
        .unwrap_or(4);
    let kinds: Vec<String> = match flags.get("plan") {
        Some(k) => vec![k.clone()],
        None => ["recoverable", "drop-storm", "corrupt-storm"]
            .iter()
            .map(ToString::to_string)
            .collect(),
    };
    let mut table = Table::new(&[
        ("plan", Align::Left),
        ("fault seed", Align::Right),
        ("injected", Align::Right),
        ("retries", Align::Right),
        ("corrupt caught", Align::Right),
        ("degraded", Align::Right),
        ("outcome", Align::Left),
    ]);
    let mut violations = 0u32;
    for kind in &kinds {
        for plan_seed in 0..seeds {
            let plan = build_plan(kind, plan_seed)?;
            let recoverable = plan.is_recoverable(ft.retry_budget);
            let (outcome, report) = run_one(&plan);
            let violated = match &outcome {
                ChaosOutcome::Exact => false,
                ChaosOutcome::Degraded => policy != DegradePolicy::Partial,
                ChaosOutcome::Diverged => true,
                ChaosOutcome::Failed(_) => recoverable && policy != DegradePolicy::Abort,
            };
            violations += u32::from(violated);
            let label = match &outcome {
                ChaosOutcome::Exact => "exact".to_string(),
                ChaosOutcome::Degraded => "degraded".to_string(),
                ChaosOutcome::Diverged => "DIVERGED".to_string(),
                ChaosOutcome::Failed(e) => {
                    format!("failed: {}", e.lines().next().unwrap_or_default())
                }
            };
            table.row(vec![
                kind.clone(),
                plan_seed.to_string(),
                report.faults.total_injected().to_string(),
                report.faults.retries.to_string(),
                report.faults.corruptions_detected.to_string(),
                report.faults.degraded_chunks.to_string(),
                if violated {
                    format!("{label} (VIOLATION)")
                } else {
                    label
                },
            ]);
        }
    }
    println!(
        "chaos survival matrix: {nodes} nodes, {} / {}, policy {policy:?}",
        strategy.label(),
        algorithm.label()
    );
    println!("{}", table.render());
    if violations > 0 {
        return Err(format!("{violations} chaos expectation(s) violated"));
    }
    println!("all expectations held: recoverable plans reproduced the fault-free bits");
    Ok(())
}

/// Validates, writes, and read-backs a trace; prints the textual
/// utilization and latency views.
fn export_trace(trace: &Trace, path: &str) -> Result<(), String> {
    trace
        .validate()
        .map_err(|empty| format!("trace has empty tracks: {}", empty.join(", ")))?;
    let json = hipress::trace::chrome::export(trace);
    std::fs::write(path, &json).map_err(|e| format!("{path}: {e}"))?;
    // Read back through the crate's own parser: what was written is
    // exactly what a viewer will load.
    let back = hipress::trace::chrome::import(&json).map_err(|e| e.to_string())?;
    if &back != trace {
        return Err(format!("{path}: export/import round trip lost data"));
    }
    println!(
        "\ntrace: {} events on {} tracks -> {path} (load in chrome://tracing or ui.perfetto.dev)",
        trace.len(),
        trace.tracks().len()
    );
    println!("\n{}", view::utilization_bars(trace, 60));
    println!("{}", view::latency_summary(trace));
    Ok(())
}

fn load_trace(path: &str) -> Result<Trace, String> {
    let json = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    hipress::trace::chrome::import(&json).map_err(|e| format!("{path}: {e}"))
}

fn load_snapshot(path: &str) -> Result<MetricsSnapshot, String> {
    let json = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    MetricsSnapshot::from_json(&json).map_err(|e| format!("{path}: {e}"))
}

fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".into())
}

/// The bench matrix: two models spanning compute-heavy (ResNet50) and
/// communication-heavy (Bert-base) regimes, all five compression
/// algorithms, both CaSync strategies.
const BENCH_MODELS: [&str; 2] = ["ResNet50", "Bert-base"];

fn bench_algorithms() -> [Algorithm; 5] {
    [
        Algorithm::OneBit,
        Algorithm::Tbq { tau: 0.05 },
        Algorithm::TernGrad { bitwidth: 2 },
        Algorithm::Dgc { rate: 0.05 },
        Algorithm::GradDrop { rate: 0.05 },
    ]
}

/// Scaled-down per-model gradient sizes for the thread-engine side of
/// the matrix: the model's largest gradient shrunk to a tractable
/// element count (so the bench finishes in seconds) plus a small
/// companion, keeping per-model differences visible.
fn bench_elems(model: DnnModel) -> Vec<usize> {
    let spec = model.spec();
    let max_elems = (spec.max_gradient_bytes() / 4) as usize;
    vec![(max_elems / 1024).clamp(1024, 16384), 768]
}

/// Runs the full matrix on both engines and returns the two
/// registries' snapshots `(runtime, sim)`. The runtime-side registry
/// is supplied by the caller so `bench --listen` can serve it live
/// while the matrix is still filling it.
fn run_bench_matrix(
    nodes: usize,
    seed: u64,
    runtime: &Registry,
) -> Result<(MetricsSnapshot, MetricsSnapshot), String> {
    use hipress::tensor::synth::{generate, GradientShape};
    use hipress::tensor::Tensor;
    let sim = Registry::new();
    for name in BENCH_MODELS {
        let model = DnnModel::by_name(name).expect("bench model exists");
        let elems = bench_elems(model);
        let grads: Vec<Vec<Tensor>> = (0..nodes)
            .map(|w| {
                elems
                    .iter()
                    .enumerate()
                    .map(|(g, &n)| {
                        generate(
                            n,
                            GradientShape::Gaussian { std_dev: 1.0 },
                            (w * 1000 + g) as u64,
                        )
                    })
                    .collect()
            })
            .collect();
        for strat in [Strategy::CaSyncPs, Strategy::CaSyncRing] {
            for alg in bench_algorithms() {
                HiPress::new(strat)
                    .algorithm(alg)
                    .partitions(2)
                    .seed(seed)
                    .backend(Backend::Threads(nodes))
                    .metrics(&runtime.scope(&[("model", model.name())]))
                    .sync(&grads)
                    .map_err(|e| format!("{} x {} x {name}: {e}", strat.label(), alg.label()))?;
                let job = TrainingJob::hipress(model, ClusterConfig::ec2(nodes.max(2)), strat)
                    .with_algorithm(alg);
                let r = simulate(&job).map_err(|e| {
                    format!("sim {} x {} x {name}: {e}", strat.label(), alg.label())
                })?;
                r.record_metrics(&sim.scope(&[
                    ("model", model.name()),
                    ("algorithm", &alg.label()),
                    ("strategy", strat.label()),
                ]));
            }
        }
    }
    let rev = git_rev();
    let stamp = |snap: MetricsSnapshot, kind: &str| {
        snap.with_meta("kind", kind)
            .with_meta("nodes", &nodes.to_string())
            .with_meta("seed", &seed.to_string())
            .with_meta("git_rev", &rev)
            .with_meta("created_by", "hipress bench")
    };
    Ok((
        stamp(runtime.snapshot(), "runtime"),
        stamp(sim.snapshot(), "sim"),
    ))
}

/// Test knob for the regression gate: `HIPRESS_BENCH_SLOWDOWN_PCT=p`
/// inflates every lower-is-better metric of the *current* snapshot by
/// `p` percent before the baseline comparison, so CI can prove the
/// gate trips without an actual slowdown.
fn apply_slowdown_knob(mut snap: MetricsSnapshot) -> Result<MetricsSnapshot, String> {
    let Ok(spec) = std::env::var("HIPRESS_BENCH_SLOWDOWN_PCT") else {
        return Ok(snap);
    };
    let pct: f64 = spec
        .parse()
        .map_err(|_| format!("bad HIPRESS_BENCH_SLOWDOWN_PCT '{spec}'"))?;
    let factor = 1.0 + pct / 100.0;
    let keys: Vec<_> = snap.keys().cloned().collect();
    for key in keys {
        if Polarity::of_name(&key.name) != Polarity::LowerIsBetter {
            continue;
        }
        let scaled = match snap.get(&key).cloned().expect("key just listed") {
            MetricValue::Counter(c) => MetricValue::Counter((c as f64 * factor) as u64),
            MetricValue::Gauge(g) => MetricValue::Gauge(g * factor),
            MetricValue::Histogram(mut h) => {
                h.sum = (h.sum as f64 * factor) as u64;
                MetricValue::Histogram(h)
            }
            MetricValue::Series(pts) => {
                MetricValue::Series(pts.into_iter().map(|(i, v)| (i, v * factor)).collect())
            }
        };
        snap.insert(key, scaled);
    }
    Ok(snap)
}

/// One summary row per (model, strategy, algorithm) in the snapshot.
fn bench_summary(snap: &MetricsSnapshot) -> Table {
    let mut table = Table::new(&[
        ("model", Align::Left),
        ("strategy", Align::Left),
        ("algorithm", Align::Left),
        ("wall", Align::Right),
        ("savings", Align::Right),
    ]);
    for (key, value) in snap.iter().filter(|(k, _)| k.name == names::WALL_NS) {
        let label = |name: &str| key.labels.get(name).unwrap_or("?").to_string();
        let savings = snap
            .get(&hipress::metrics::Key::new(
                names::COMPRESSION_SAVINGS,
                key.labels.clone(),
            ))
            .map(|v| format!("{:.1}x", v.scalar()))
            .unwrap_or_else(|| "-".into());
        table.row(vec![
            label("model"),
            label("strategy"),
            label("algorithm"),
            fmt_duration_ns(value.scalar() as u64),
            savings,
        ]);
    }
    table
}

/// Runs the bench matrix, writes `BENCH_runtime.json`/`BENCH_sim.json`
/// (verified through the crate's own parser), and optionally gates
/// against a baseline. The baseline's `kind` meta picks which side is
/// compared: a `kind=sim` baseline gates the deterministic simulator
/// snapshot (reproducible on any host), anything else gates the
/// measured runtime snapshot (wall clock — compare on the same host).
fn cmd_bench(flags: &HashMap<String, String>) -> Result<(), String> {
    let nodes: usize = flags
        .get("nodes")
        .map(|n| n.parse().map_err(|_| format!("bad --nodes '{n}'")))
        .transpose()?
        .unwrap_or(3);
    if flags.contains_key("require-overlap") {
        // The gate has its own default cluster size: the 4-node ring
        // chain leaves enough per-node idle time for pipelining to
        // reclaim; 3 nodes keep everyone too busy to show a margin.
        let gate_nodes = flags
            .get("nodes")
            .map(|n| n.parse().map_err(|_| format!("bad --nodes '{n}'")))
            .transpose()?
            .unwrap_or(4);
        return overlap_gate(gate_nodes);
    }
    let tolerance: f64 = flags
        .get("tolerance")
        .map(|t| t.parse().map_err(|_| format!("bad --tolerance '{t}'")))
        .transpose()?
        .unwrap_or(25.0);
    let dir = flags.get("dir").map(String::as_str).unwrap_or(".");
    let baseline = flags
        .get("baseline")
        .map(|p| load_snapshot(p).map(|s| (p, s)))
        .transpose()?;
    let want_sim = baseline
        .as_ref()
        .is_some_and(|(_, b)| b.meta.get("kind").map(String::as_str) == Some("sim"));
    let linger_ms: u64 = flags
        .get("linger-ms")
        .map(|v| v.parse().map_err(|_| format!("bad --linger-ms '{v}'")))
        .transpose()?
        .unwrap_or(0);
    // `bench --listen` serves the runtime-side registry while the
    // matrix fills it, so an operator can scrape /metrics mid-bench.
    let matrix_reg = Registry::new();
    let hub = if let Some(addr) = flags.get("listen") {
        let hub = Telemetry::new(matrix_reg.clone(), WatchConfig::default());
        let server = hipress::obs::Server::bind(addr, hub.clone()).map_err(|e| e.to_string())?;
        println!("telemetry: listening on {}", server.addr());
        Some(hub)
    } else {
        None
    };
    let finish = |r: Result<(), String>| {
        if let Some(hub) = &hub {
            hub.mark_done();
            if linger_ms > 0 {
                std::thread::sleep(std::time::Duration::from_millis(linger_ms));
            }
        }
        r
    };
    let current = match flags.get("snapshot") {
        // Gate a previously written snapshot without re-running (fold
        // it into the served registry so /metrics still shows it).
        Some(path) => {
            let snap = load_snapshot(path)?;
            if hub.is_some() {
                matrix_reg.root().absorb_snapshot(&snap);
            }
            snap
        }
        None => {
            let (rt_snap, sim_snap) = run_bench_matrix(nodes, 7, &matrix_reg)?;
            let rt_path = format!("{dir}/BENCH_runtime.json");
            let sim_path = format!("{dir}/BENCH_sim.json");
            for (path, snap) in [(&rt_path, &rt_snap), (&sim_path, &sim_snap)] {
                std::fs::write(path, snap.to_json()).map_err(|e| format!("{path}: {e}"))?;
                // Read back through the crate's own parser: what was
                // written is exactly what the gate will load.
                if &load_snapshot(path)? != snap {
                    return Err(format!("{path}: write/read round trip lost data"));
                }
                println!("wrote {path} ({} metrics)", snap.len());
            }
            print!("{}", bench_summary(&rt_snap).render_indented("  "));
            if want_sim {
                sim_snap
            } else {
                rt_snap
            }
        }
    };
    let Some((baseline_path, baseline)) = baseline else {
        return finish(Ok(()));
    };
    let current = apply_slowdown_knob(current)?;
    let diff = MetricsDiff::between(&baseline, &current);
    let regressions = diff.regressions(tolerance);
    finish(if regressions.is_empty() {
        println!(
            "perf gate: {} shared metric(s) within {tolerance}% of {baseline_path}",
            diff.rows.len()
        );
        Ok(())
    } else {
        for row in &regressions {
            println!("REGRESSED {row}");
        }
        Err(format!(
            "{} metric(s) regressed beyond {tolerance}% vs {baseline_path}",
            regressions.len()
        ))
    })
}

/// The pipelining gate (`bench --require-overlap`): the same 128
/// iterations of an uncompressed CaSync-Ring pass, run serially
/// (window 1) and pipelined (window 16) as real OS processes over the
/// loopback TCP mesh; median-of-5 pipelined wall time must beat
/// serial, or the gate fails. The result flows are bit-identical
/// either way (per-task codec seeding), so the speedup is pure
/// overlap, not skipped work.
///
/// The shape is chosen for where pipelining genuinely pays on a
/// small host: one tiny unpartitioned gradient makes each ring pass a
/// single dependency chain whose TCP hops park every process at once,
/// and cross-iteration work is the only way to keep the cores busy.
/// Compute-heavy shapes (large gradients, codecs) are CPU-bound here
/// and show no wall-clock margin on single-core machines even though
/// their span overlap is just as real.
fn overlap_gate(nodes: usize) -> Result<(), String> {
    use hipress::tensor::synth::{generate, GradientShape};
    use hipress::tensor::Tensor;
    let elems = [512usize];
    let iters = 128u32;
    let grads: Vec<Vec<Tensor>> = (0..nodes)
        .map(|w| {
            elems
                .iter()
                .enumerate()
                .map(|(g, &n)| {
                    generate(
                        n,
                        GradientShape::Gaussian { std_dev: 1.0 },
                        (w * 1000 + g) as u64,
                    )
                })
                .collect()
        })
        .collect();
    let run_once = |window: u32| -> Result<RuntimeReport, String> {
        let out = HiPress::new(Strategy::CaSyncRing)
            .algorithm(Algorithm::None)
            .partitions(1)
            .seed(7)
            .backend(Backend::Processes(nodes))
            .iterations(iters)
            .pipeline_window(window)
            .sync(&grads)
            .map_err(|e| e.to_string())?;
        Ok(out.report.expect("process backend always reports"))
    };
    // Warm up both shapes, then interleave the measured runs so
    // machine drift hits serial and pipelined alike.
    run_once(1)?;
    run_once(16)?;
    let mut serial = Vec::new();
    let mut piped = Vec::new();
    let mut overlap = 0.0f64;
    for _ in 0..5 {
        serial.push(run_once(1)?.wall_ns);
        let r = run_once(16)?;
        overlap = overlap.max(r.pipeline_overlap());
        piped.push(r.wall_ns);
    }
    serial.sort_unstable();
    piped.sort_unstable();
    let (ms, mp) = (serial[2], piped[2]);
    println!(
        "pipelining gate: {nodes} processes over loopback TCP, {iters} iterations, \
         casync-ring / uncompressed, {} elems",
        elems.map(|e| e.to_string()).join(","),
    );
    println!(
        "  serial (window 1):     median {} over 5 runs",
        fmt_duration_ns(ms)
    );
    println!(
        "  pipelined (window 16): median {} over 5 runs ({:.2}x, overlap efficiency {:.2})",
        fmt_duration_ns(mp),
        ms as f64 / mp as f64,
        overlap
    );
    if mp < ms {
        println!("pipelined beats serial: gate holds");
        Ok(())
    } else {
        Err("pipelined run did not beat the serial run".into())
    }
}

/// Serves a previously written metrics snapshot over the embedded
/// telemetry server: the file is folded into a live [`Registry`] and
/// exposed at `/metrics` (with `/healthz` reporting `done`) until the
/// process is interrupted.
fn cmd_serve(flags: &HashMap<String, String>, file: Option<&str>) -> Result<(), String> {
    let path = file.ok_or("usage: hipress serve <BENCH.json> [--listen ADDR]")?;
    let snap = load_snapshot(path)?;
    let registry = Registry::new();
    registry.root().absorb_snapshot(&snap);
    let hub = Telemetry::new(registry, WatchConfig::default());
    // A snapshot is a finished run: /events terminates immediately and
    // the heartbeat scanner stays quiet.
    hub.mark_done();
    let addr = flags
        .get("listen")
        .map(String::as_str)
        .unwrap_or("127.0.0.1:9464");
    let server = hipress::obs::Server::bind(addr, hub).map_err(|e| e.to_string())?;
    println!(
        "telemetry: listening on {} ({} metric(s) from {path}; ctrl-c to stop)",
        server.addr(),
        snap.len()
    );
    loop {
        std::thread::park();
    }
}

/// Fetches one endpoint from a running telemetry server with the
/// crate's own std-TCP client and prints the body (the CI smoke step
/// uses this instead of assuming curl exists).
fn cmd_scrape(
    flags: &HashMap<String, String>,
    addr: Option<&str>,
    path: Option<&str>,
) -> Result<(), String> {
    let usage = "usage: hipress scrape <addr> </metrics|/healthz|/report.json|/events> [--lines N]";
    let addr = addr.ok_or(usage)?;
    let path = path.ok_or(usage)?;
    let lines: Option<usize> = flags
        .get("lines")
        .map(|v| v.parse().map_err(|_| format!("bad --lines '{v}'")))
        .transpose()?;
    let (status, body) =
        hipress::obs::serve::fetch(addr, path, lines).map_err(|e| e.to_string())?;
    print!("{body}");
    if !body.ends_with('\n') {
        println!();
    }
    if status != 200 {
        return Err(format!("{path}: HTTP {status}"));
    }
    Ok(())
}

/// Renders a snapshot file as a dashboard, canonical JSON, or
/// Prometheus text.
fn cmd_report(flags: &HashMap<String, String>, file: Option<&str>) -> Result<(), String> {
    let path = file.ok_or("usage: hipress report <BENCH.json> [--json | --prom]")?;
    let snap = load_snapshot(path)?;
    if flags.contains_key("json") {
        println!("{}", snap.to_json());
    } else if flags.contains_key("prom") {
        print!("{}", hipress::metrics::prom::render(&snap));
    } else {
        print!("{}", metrics_view::render(&snap));
    }
    Ok(())
}

/// Compares two exported traces: per-category latency diff plus
/// side-by-side utilization bars on a common time scale.
fn cmd_trace_diff(a: Option<&str>, b: Option<&str>) -> Result<(), String> {
    let usage = "usage: hipress trace-diff <a.json> <b.json>";
    let (pa, pb) = (a.ok_or(usage)?, b.ok_or(usage)?);
    let (ta, tb) = (load_trace(pa)?, load_trace(pb)?);
    let diff = TraceDiff::compare(&ta, &tb);
    println!("{diff}");
    println!("{}", view::side_by_side(&ta, &tb, 60));
    Ok(())
}

fn cmd_compare(flags: &HashMap<String, String>) -> Result<(), String> {
    let model = parse_model(flags)?;
    let cluster = parse_cluster(flags)?;
    let alg = parse_algorithm(flags)?;
    let alg = if alg == Algorithm::None {
        Algorithm::OneBit
    } else {
        alg
    };
    let byteps_cluster = if flags.contains_key("local") {
        cluster
    } else {
        cluster.with_tcp()
    };
    let jobs: Vec<(String, TrainingJob)> = vec![
        (
            "BytePS".into(),
            TrainingJob::baseline(model, byteps_cluster, Strategy::BytePs),
        ),
        (
            "Ring".into(),
            TrainingJob::baseline(model, cluster, Strategy::HorovodRing),
        ),
        (
            format!("BytePS(OSS-{})", alg.label()),
            TrainingJob::baseline(model, byteps_cluster, Strategy::BytePs).with_algorithm(alg),
        ),
        (
            format!("HiPress-CaSync-PS({})", alg.label()),
            TrainingJob::hipress(model, cluster, Strategy::CaSyncPs).with_algorithm(alg),
        ),
        (
            format!("HiPress-CaSync-Ring({})", alg.label()),
            TrainingJob::hipress(model, cluster, Strategy::CaSyncRing).with_algorithm(alg),
        ),
    ];
    let mut table = Table::new(&[
        ("system", Align::Left),
        ("samples/s", Align::Right),
        ("scaling", Align::Right),
    ]);
    for (label, job) in jobs {
        let r = simulate(&job).map_err(|e| e.to_string())?;
        table.row(vec![
            label,
            format!("{:.0}", r.throughput),
            format!("{:.2}", r.scaling_efficiency),
        ]);
    }
    print!("{table}");
    Ok(())
}

fn cmd_plan(flags: &HashMap<String, String>) -> Result<(), String> {
    let model = parse_model(flags)?;
    let cluster = parse_cluster(flags)?;
    let strategy = parse_strategy(flags)?;
    let algorithm = parse_algorithm(flags)?;
    if algorithm == Algorithm::None {
        return Err("planning needs a compression algorithm".into());
    }
    let registry = Registry::new();
    let planner = Planner::profile(&cluster, strategy, algorithm)
        .map_err(|e| e.to_string())?
        .with_metrics(&registry.scope(&[("model", model.name())]));
    println!(
        "selective compression threshold: {}",
        fmt_bytes(planner.compression_threshold())
    );
    let mut table = Table::new(&[
        ("gradient", Align::Left),
        ("size", Align::Right),
        ("compress", Align::Right),
        ("K", Align::Right),
    ]);
    let spec = model.spec();
    for layer in &spec.layers {
        let plan = planner.plan_gradient(layer.bytes);
        table.row(vec![
            layer.name.clone(),
            fmt_bytes(layer.bytes),
            (if plan.compress { "yes" } else { "no" }).to_string(),
            plan.partitions.to_string(),
        ]);
    }
    print!("{table}");
    println!(
        "cost-model evaluations: {}",
        registry.snapshot().total_counter(names::PLANNER_EVALS)
    );
    Ok(())
}

fn cmd_lint(flags: &HashMap<String, String>, file: Option<&str>) -> Result<(), String> {
    use hipress::casync::{CompressionSpec, GradPlan, IterationSpec, SyncGradient};
    use hipress::compll::algorithms as algs;

    // A single DSL file: dataflow-check it and stop.
    if let Some(path) = file {
        let source = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let report = hipress::lint::check_source(&source).map_err(|e| e.to_string())?;
        if !report.is_clean() {
            println!("{}", report.render());
        }
        println!(
            "{path}: {} error(s), {} warning(s)",
            report.error_count(),
            report.warning_count()
        );
        return if report.error_count() == 0 {
            Ok(())
        } else {
            Err(format!("{path}: lint errors"))
        };
    }

    // Plan verification across strategy x algorithm x cluster size x
    // partitioning, over a gradient mix with large, medium, and tiny
    // (zero-chunk-producing) gradients.
    let strategies: Vec<Strategy> = match flags.get("strategy") {
        Some(_) => vec![parse_strategy(flags)?],
        None => Strategy::all().to_vec(),
    };
    let algorithms: Vec<Algorithm> = match flags.get("algorithm") {
        Some(_) => vec![parse_algorithm(flags)?],
        None => vec![
            Algorithm::None,
            Algorithm::OneBit,
            Algorithm::Tbq { tau: 0.05 },
            Algorithm::TernGrad { bitwidth: 2 },
            Algorithm::Dgc { rate: 0.001 },
            Algorithm::GradDrop { rate: 0.01 },
        ],
    };
    let node_counts: Vec<usize> = match flags.get("nodes") {
        Some(n) => vec![n.parse().map_err(|_| format!("bad --nodes '{n}'"))?],
        None => vec![2, 3, 5],
    };
    let sizes: [u64; 3] = [4096, 65536, 260];
    let mut graphs = 0usize;
    let mut compositions = 0usize;
    let mut errors = 0usize;
    let mut warnings = 0usize;
    for &strat in &strategies {
        for algorithm in &algorithms {
            let compressor = algorithm.build();
            for &nodes in &node_counts {
                for partitions in [1usize, 3] {
                    let cluster = ClusterConfig::ec2(nodes);
                    let iter = IterationSpec {
                        gradients: sizes
                            .iter()
                            .enumerate()
                            .map(|(g, &bytes)| SyncGradient {
                                name: format!("g{g}"),
                                bytes,
                                ready_offset_ns: (sizes.len() - g) as u64 * 1000,
                                plan: GradPlan {
                                    compress: compressor.is_some(),
                                    partitions,
                                },
                            })
                            .collect(),
                        compression: compressor.as_deref().map(CompressionSpec::of),
                    };
                    let graph = strat
                        .build(&cluster, &iter)
                        .map_err(|e| format!("{strat:?}/{nodes} nodes: {e}"))?;
                    let report = hipress::lint::verify_graph(&graph, nodes);
                    graphs += 1;
                    errors += report.error_count();
                    warnings += report.warning_count();
                    if !report.is_clean() {
                        println!(
                            "{} x {} x {nodes} nodes x K={partitions} ({} tasks):",
                            strat.label(),
                            algorithm.label(),
                            graph.len()
                        );
                        println!("{}", report.render());
                    }
                    // CaSync graphs additionally run pipelined on
                    // CaSync-RT: compose each into overlapping
                    // iterations and check the cross-iteration
                    // properties (P017-P019) at several windows.
                    // Baseline strategies never pipeline.
                    if strat.is_casync() {
                        for window in [1u32, 2, 4] {
                            let r = hipress::lint::verify_pipelined(
                                &graph,
                                nodes,
                                &hipress::lint::PipelineSpec::unshared(8, window),
                            );
                            compositions += 1;
                            errors += r.error_count();
                            warnings += r.warning_count();
                            if !r.is_clean() {
                                println!(
                                    "{} x {} x {nodes} nodes x K={partitions} pipelined w{window}:",
                                    strat.label(),
                                    algorithm.label(),
                                );
                                println!("{}", r.render());
                            }
                        }
                    }
                }
            }
        }
    }

    // Dataflow analysis of every shipped CompLL program.
    let programs: Vec<(String, String)> = vec![
        ("onebit".into(), algs::ONEBIT_DSL.to_string()),
        ("tbq".into(), algs::TBQ_DSL.to_string()),
        ("dgc".into(), algs::DGC_DSL.to_string()),
        ("graddrop".into(), algs::GRADDROP_DSL.to_string()),
        ("adacomp".into(), algs::ADACOMP_DSL.to_string()),
        (
            "terngrad:1".into(),
            algs::TERNGRAD_DSL_TEMPLATE.replace("{U}", "uint1"),
        ),
        (
            "terngrad:2".into(),
            algs::TERNGRAD_DSL_TEMPLATE.replace("{U}", "uint2"),
        ),
        (
            "terngrad:4".into(),
            algs::TERNGRAD_DSL_TEMPLATE.replace("{U}", "uint4"),
        ),
        (
            "terngrad:8".into(),
            algs::TERNGRAD_DSL_TEMPLATE.replace("{U}", "uint8"),
        ),
    ];
    for (name, source) in &programs {
        let report = hipress::lint::check_source(source)
            .map_err(|e| format!("shipped program {name}: {e}"))?;
        errors += report.error_count();
        warnings += report.warning_count();
        if !report.is_clean() {
            println!("{name}:");
            println!("{}", report.render());
        }
    }

    println!(
        "linted {graphs} task graphs ({compositions} pipelined compositions) and {} CompLL \
         programs: {errors} error(s), {warnings} warning(s)",
        programs.len()
    );
    // The builder matrix and shipped programs must be warning-clean,
    // not merely error-free — ci.sh relies on this.
    if errors > 0 || warnings > 0 {
        return Err(format!("{errors} lint error(s), {warnings} warning(s)"));
    }
    Ok(())
}

fn cmd_verify(flags: &HashMap<String, String>) -> Result<(), String> {
    use hipress::verify::{
        check_config, check_elastic, elastic_matrix, matrix, ElasticMutation, Mutation,
    };

    // `--mutant` names one defect from either family: the wire/FT
    // alphabet is seeded into the wire matrix, the elastic alphabet
    // into the epoch-transition matrix; the other matrix runs clean.
    let (mutation, elastic_mutation) = match flags.get("mutant") {
        None => (None, None),
        Some(name) => match (Mutation::from_name(name), ElasticMutation::from_name(name)) {
            (Some(m), _) => (Some(m), None),
            (None, Some(m)) => (None, Some(m)),
            (None, None) => {
                return Err(format!(
                    "unknown mutant '{name}' (known: {}; elastic: {})",
                    Mutation::ALL
                        .iter()
                        .map(|m| m.name())
                        .collect::<Vec<_>>()
                        .join(", "),
                    ElasticMutation::ALL
                        .iter()
                        .map(|m| m.name())
                        .collect::<Vec<_>>()
                        .join(", ")
                ))
            }
        },
    };

    let mut table = Table::new(&[
        ("scenario", Align::Left),
        ("states", Align::Right),
        ("transitions", Align::Right),
        ("pruned", Align::Right),
        ("terminals", Align::Right),
        ("verdict", Align::Left),
    ]);
    let mut violated = 0usize;
    let mut states = 0usize;
    let mut transitions = 0usize;
    let mut pruned = 0usize;
    let mut first_trace: Option<(String, Vec<String>)> = None;
    for s in matrix() {
        let out = check_config(&s.cfg, mutation, true);
        states += out.stats.states;
        transitions += out.stats.transitions;
        pruned += out.stats.pruned;
        let verdict = match &out.violation {
            None => "exhausted clean".to_string(),
            Some((v, trace)) => {
                violated += 1;
                if first_trace.is_none() {
                    first_trace = Some((s.name.to_string(), trace.clone()));
                }
                format!("VIOLATED: {v}")
            }
        };
        table.row(vec![
            s.name.to_string(),
            out.stats.states.to_string(),
            out.stats.transitions.to_string(),
            out.stats.pruned.to_string(),
            out.stats.terminals.to_string(),
            verdict,
        ]);
    }
    // The elastic epoch-transition matrix: drain/evict/re-plan/rejoin
    // interleavings over the same `hipress_runtime::protocol` rules.
    for s in elastic_matrix() {
        let out = check_elastic(&s.cfg, elastic_mutation);
        states += out.states;
        transitions += out.transitions;
        let verdict = match &out.violation {
            None => "exhausted clean".to_string(),
            Some((v, trace)) => {
                violated += 1;
                if first_trace.is_none() {
                    first_trace = Some((s.name.to_string(), trace.clone()));
                }
                format!("VIOLATED: {v}")
            }
        };
        table.row(vec![
            s.name.to_string(),
            out.states.to_string(),
            out.transitions.to_string(),
            "-".to_string(),
            out.terminals.to_string(),
            verdict,
        ]);
    }
    print!("{table}");
    println!(
        "explored {states} states / {transitions} transitions; sleep-set reduction pruned \
         {pruned} ({:.0}% of the unreduced frontier)",
        100.0 * pruned as f64 / (transitions + pruned).max(1) as f64
    );

    let seeded = mutation
        .map(|m| m.name())
        .or(elastic_mutation.map(|m| m.name()));
    match (seeded, violated) {
        (None, 0) => {
            println!("protocol verified: every scenario exhausted violation-free");
            Ok(())
        }
        (None, n) => Err(format!("{n} scenario(s) violated the protocol properties")),
        (Some(name), 0) => Err(format!(
            "seeded defect '{name}' went undetected — the checker lost its teeth"
        )),
        (Some(name), n) => {
            if let Some((scenario, trace)) = &first_trace {
                println!("\ncounterexample ({scenario}):");
                for line in trace {
                    println!("  {line}");
                }
            }
            Err(format!("{n} scenario(s) refute seeded defect '{name}'"))
        }
    }
}

fn cmd_compile(path: Option<&str>) -> Result<(), String> {
    let path = path.ok_or("usage: hipress compile <file.dsl>")?;
    let source = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let alg =
        CompiledAlgorithm::new("cli", &source, param_values(&[])).map_err(|e| e.to_string())?;
    let report = alg.loc_report();
    println!(
        "compiled OK: {} logic lines, {} udf lines, operators {:?}, integration 0",
        report.logic, report.udf, report.operators
    );
    println!("\n--- generated CUDA ---\n{}", alg.cuda_source());
    Ok(())
}

//! The high-level gradient-synchronization entry point.
//!
//! [`HiPress`] is a builder over the whole stack: pick a strategy and
//! a compression algorithm, hand it one gradient set per worker, and
//! it builds the CaSync task graph and executes it — on the reference
//! interpreter ([`Backend::Simulator`]), for real on OS threads
//! ([`Backend::Threads`]), or as separate OS processes synchronizing
//! over a loopback TCP mesh ([`Backend::Processes`]). All backends
//! install bit-identical parameters; the real backends additionally
//! return a measured [`RuntimeReport`].

use hipress_chaos::FaultPlan;
use hipress_compress::Algorithm;
use hipress_core::interp::{gradient_flows, interpret, FlowOutcome};
use hipress_core::{
    ClusterConfig, CompressionSpec, GradPlan, IterationSpec, Strategy, SyncGradient,
};
use hipress_metrics::Scope;
use hipress_obs::Telemetry;
use hipress_runtime::{
    FaultTolerance, Instruments, PipelineConfig, ProcessConfig, RunOutcome, RuntimeConfig,
    RuntimeReport,
};
use hipress_tensor::Tensor;
use hipress_trace::Tracer;
use hipress_util::{Error, Result};

pub use hipress_runtime::Backend;

/// The result of one synchronization round.
#[derive(Debug, Clone)]
pub struct SyncOutcome {
    /// Synchronized per-flow, per-node tensors.
    pub flows: Vec<FlowOutcome>,
    /// Wall-clock measurements — present only for
    /// [`Backend::Threads`]; the simulator has no wall clock worth
    /// reporting.
    pub report: Option<RuntimeReport>,
}

impl SyncOutcome {
    /// True when every flow's replicas are byte-identical.
    pub fn replicas_consistent(&self) -> bool {
        self.flows.iter().all(FlowOutcome::replicas_consistent)
    }
}

/// Builder for compression-aware gradient synchronization.
///
/// ```
/// use hipress::prelude::*;
/// use hipress::tensor::synth::{generate, GradientShape};
///
/// let grads: Vec<Vec<_>> = (0..3)
///     .map(|w| vec![generate(4096, GradientShape::Gaussian { std_dev: 1.0 }, w)])
///     .collect();
/// let out = HiPress::new(Strategy::CaSyncRing)
///     .algorithm(Algorithm::OneBit)
///     .backend(Backend::Threads(3))
///     .sync(&grads)
///     .unwrap();
/// assert!(out.replicas_consistent());
/// assert!(out.report.unwrap().compression_savings() > 8.0);
/// ```
#[derive(Debug, Clone)]
pub struct HiPress {
    strategy: Strategy,
    algorithm: Algorithm,
    partitions: usize,
    seed: u64,
    backend: Backend,
    batch_compression: bool,
    tracer: Option<Tracer>,
    metrics: Option<Scope>,
    telemetry: Option<Telemetry>,
    chaos: Option<FaultPlan>,
    fault_tolerance: Option<FaultTolerance>,
    iterations: u32,
    window: u32,
    process: ProcessConfig,
}

impl HiPress {
    /// Starts a builder for the given synchronization strategy.
    pub fn new(strategy: Strategy) -> Self {
        Self {
            strategy,
            algorithm: Algorithm::None,
            partitions: 1,
            seed: 0,
            backend: Backend::Simulator,
            batch_compression: true,
            tracer: None,
            metrics: None,
            telemetry: None,
            chaos: None,
            fault_tolerance: None,
            iterations: 1,
            window: 1,
            process: ProcessConfig::default(),
        }
    }

    /// Sets the compression algorithm ([`Algorithm::None`] runs the
    /// strategy uncompressed).
    #[must_use]
    pub fn algorithm(mut self, a: Algorithm) -> Self {
        self.algorithm = a;
        self
    }

    /// Splits each gradient into `k` chunks synchronized as parallel
    /// flows (§3.3 partitioning).
    #[must_use]
    pub fn partitions(mut self, k: usize) -> Self {
        self.partitions = k.max(1);
        self
    }

    /// Seeds the stochastic codecs (TernGrad, DGC sampling).
    #[must_use]
    pub fn seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }

    /// Selects the execution backend.
    #[must_use]
    pub fn backend(mut self, b: Backend) -> Self {
        self.backend = b;
        self
    }

    /// Enables or disables batch compression on the thread backend.
    #[must_use]
    pub fn batch_compression(mut self, on: bool) -> Self {
        self.batch_compression = on;
        self
    }

    /// Records the synchronization into `tracer` (a cheap clone of
    /// the handle is stored; tracing stays opt-in and the untraced
    /// hot path allocation-free). Both real backends record: they add
    /// per-node task spans, queue-depth counter tracks, and fabric
    /// events, and their [`SyncOutcome::report`] can be re-derived
    /// from the trace via [`RuntimeReport::from_trace`]. On
    /// [`Backend::Processes`] each worker traces against its own
    /// clock and the coordinator stitches the timelines together,
    /// shifting every rank by the clock offset it measured during
    /// rendezvous (recorded on the trace's `clock` track). The
    /// reference interpreter behind [`Backend::Simulator`] is
    /// untimed, so it leaves the tracer untouched — simulated
    /// timelines come from the discrete-event executor
    /// (`hipress sim --trace`, `Executor::run_traced`).
    #[must_use]
    pub fn trace(mut self, tracer: &Tracer) -> Self {
        self.tracer = Some(tracer.clone());
        self
    }

    /// Records live metrics into `scope` (a cheap clone of the handle
    /// is stored; recording stays opt-in and the uninstrumented hot
    /// path untouched). Like tracing, both real backends measure —
    /// [`Backend::Processes`] workers snapshot their own registries
    /// and the coordinator folds them into this scope, per-rank
    /// labels intact. Every metric the run records carries
    /// `algorithm` and `strategy` labels derived from this builder on
    /// top of the scope's own labels, so one registry can absorb a
    /// whole experiment matrix (e.g. scopes labelled per model) and
    /// still keep the runs apart. Snapshot the scope's registry
    /// afterwards with
    /// [`Registry::snapshot`][hipress_metrics::Registry::snapshot].
    #[must_use]
    pub fn metrics(mut self, scope: &Scope) -> Self {
        self.metrics = Some(scope.clone());
        self
    }

    /// Publishes live per-iteration telemetry into `hub` (a cheap
    /// clone of the handle is stored). On the real backends every
    /// retired pipelined iteration lands one
    /// [`IterRecord`][hipress_obs::IterRecord] in the hub's ring,
    /// beats the rank's heartbeat, and runs the SLO watchdog — the
    /// embedded telemetry server (`hipress::obs::Server`) exposes all
    /// of it over HTTP while the run is still in flight. On
    /// [`Backend::Processes`] workers stream records back over the
    /// control channel and the coordinator republishes them under its
    /// own clock. The simulator and the single-iteration fast path
    /// retire no pipelined iterations and publish nothing.
    ///
    /// The hub's `/metrics` endpoint serves the hub's own registry,
    /// which this attachment feeds only watchdog counters
    /// (`alerts_total{kind}`); to serve the engine's counters from
    /// the same scrape, also attach
    /// [`metrics`][Self::metrics]`(&hub.registry().root())` — the
    /// CLI's `--listen` does exactly that.
    #[must_use]
    pub fn telemetry(mut self, hub: &Telemetry) -> Self {
        self.telemetry = Some(hub.clone());
        self
    }

    /// Runs the synchronization over a fault-injecting fabric
    /// ([`hipress_chaos`]): every inter-node message is subject to
    /// the plan's deterministic drop/duplicate/reorder/delay/corrupt
    /// verdicts, and per-node stall/crash triggers apply. Setting a
    /// plan switches [`Backend::Threads`] onto the fault-tolerant
    /// envelope protocol (as does [`Self::fault_tolerance`]);
    /// recoverable plans still install bit-identical parameters.
    /// Only the thread backend has a fabric to break — combining a
    /// plan with [`Backend::Simulator`] is a config error.
    #[must_use]
    pub fn chaos(mut self, plan: &FaultPlan) -> Self {
        self.chaos = Some(plan.clone());
        self
    }

    /// Tunes the fault-tolerant protocol (timeouts, retry budget,
    /// backoff, straggler policy) and switches [`Backend::Threads`]
    /// onto the envelope path even without a fault plan — useful for
    /// measuring the protocol's overhead or surviving a genuinely
    /// unreliable environment.
    #[must_use]
    pub fn fault_tolerance(mut self, ft: FaultTolerance) -> Self {
        self.fault_tolerance = Some(ft);
        self
    }

    /// Runs this many training iterations back to back over the same
    /// gradients. With [`Self::pipeline_window`] above 1 the real
    /// backends overlap adjacent iterations; results stay bit-for-bit
    /// identical to running them one at a time (per-task codec
    /// seeding), so the reported flows are always the final
    /// iteration's.
    #[must_use]
    pub fn iterations(mut self, n: u32) -> Self {
        self.iterations = n;
        self
    }

    /// Bounds how many iterations may be in flight at once on the
    /// pipelined path (§3.2 pipelining across iterations). `1` runs
    /// iterations serially.
    #[must_use]
    pub fn pipeline_window(mut self, w: u32) -> Self {
        self.window = w;
        self
    }

    /// Tunes how [`Backend::Processes`] launches its workers: which
    /// binary to execute (defaults to the current executable),
    /// rendezvous/run deadlines, and the kill-a-node fault injection.
    #[must_use]
    pub fn process_config(mut self, p: ProcessConfig) -> Self {
        self.process = p;
        self
    }

    /// Synchronizes one gradient set per worker: `worker_grads[w][g]`
    /// is worker `w`'s gradient `g`. All workers must hold the same
    /// gradient shapes.
    ///
    /// # Errors
    ///
    /// Returns an error on shape mismatches, a node count that does
    /// not match [`Backend::Threads`], or protocol failures from the
    /// chosen backend.
    pub fn sync(&self, worker_grads: &[Vec<Tensor>]) -> Result<SyncOutcome> {
        // Make the static analyzers load-bearing: debug builds verify
        // every graph built/interpreted below (no-op in release).
        hipress_lint::install();
        let nodes = worker_grads.len();
        if nodes < 2 {
            return Err(Error::config("synchronization needs at least 2 workers"));
        }
        if self.iterations == 0 || self.window == 0 {
            return Err(Error::config(format!(
                "pipeline needs at least 1 iteration and a window of at least 1 \
                 (got iterations {}, window {})",
                self.iterations, self.window
            )));
        }
        match self.backend {
            Backend::Threads(n) if n != nodes => {
                return Err(Error::config(format!(
                    "Backend::Threads({n}) but {nodes} workers supplied"
                )));
            }
            Backend::Processes(n) if n != nodes => {
                return Err(Error::config(format!(
                    "Backend::Processes({n}) but {nodes} workers supplied"
                )));
            }
            _ => {}
        }
        let first = &worker_grads[0];
        for (w, g) in worker_grads.iter().enumerate() {
            if g.len() != first.len() || g.iter().zip(first).any(|(a, b)| a.len() != b.len()) {
                return Err(Error::config(format!(
                    "worker {w} gradient shapes differ from worker 0"
                )));
            }
        }
        let compressor = self.algorithm.build();
        let iter = IterationSpec {
            gradients: first
                .iter()
                .enumerate()
                .map(|(g, t)| SyncGradient {
                    name: format!("g{g}"),
                    bytes: t.byte_size(),
                    ready_offset_ns: 0,
                    plan: GradPlan {
                        compress: compressor.is_some(),
                        partitions: self.partitions,
                    },
                })
                .collect(),
            compression: compressor.as_deref().map(CompressionSpec::of),
        };
        let cluster = ClusterConfig::ec2(nodes);
        let graph = self.strategy.build(&cluster, &iter)?;
        let flows = gradient_flows(worker_grads);
        let pipelined = self.iterations > 1 || self.window > 1;
        match self.backend {
            Backend::Simulator => {
                if self.chaos.is_some() || self.fault_tolerance.is_some() {
                    return Err(Error::config(
                        "chaos/fault tolerance need a real fabric: use Backend::Threads",
                    ));
                }
                if pipelined {
                    return Err(Error::config(
                        "pipelined iterations need a real runtime: use Backend::Threads or Backend::Processes",
                    ));
                }
                let outcomes = interpret(&graph, nodes, &flows, compressor.as_deref(), self.seed)?;
                Ok(SyncOutcome {
                    flows: outcomes,
                    report: None,
                })
            }
            Backend::Threads(_) => {
                let config = RuntimeConfig {
                    batch_compression: self.batch_compression,
                    ..RuntimeConfig::default()
                };
                let scope = self.metrics.as_ref().map(|s| {
                    s.with(&[
                        ("algorithm", &self.algorithm.label()),
                        ("strategy", self.strategy.label()),
                    ])
                });
                let instruments = Instruments {
                    tracer: self.tracer.as_ref(),
                    metrics: scope.as_ref(),
                    progress: self.telemetry.as_ref(),
                };
                let RunOutcome { flows, report } = if pipelined {
                    if self.chaos.is_some() || self.fault_tolerance.is_some() {
                        return Err(Error::config(
                            "chaos/fault tolerance and pipelined iterations cannot combine yet",
                        ));
                    }
                    let pcfg = PipelineConfig {
                        iterations: self.iterations,
                        window: self.window,
                    };
                    hipress_runtime::run_pipelined(
                        &graph,
                        nodes,
                        &flows,
                        compressor.as_deref(),
                        self.seed,
                        &config,
                        &pcfg,
                        instruments,
                    )?
                } else if self.chaos.is_some() || self.fault_tolerance.is_some() {
                    let plan = self
                        .chaos
                        .clone()
                        .unwrap_or_else(|| FaultPlan::none(self.seed));
                    hipress_runtime::run_chaos(
                        &graph,
                        nodes,
                        &flows,
                        compressor.as_deref(),
                        self.seed,
                        &config,
                        &self.fault_tolerance.unwrap_or_default(),
                        &plan,
                        instruments,
                    )?
                } else {
                    hipress_runtime::run_instrumented(
                        &graph,
                        nodes,
                        &flows,
                        compressor.as_deref(),
                        self.seed,
                        &config,
                        instruments,
                    )?
                };
                Ok(SyncOutcome {
                    flows,
                    report: Some(report),
                })
            }
            Backend::Processes(_) => {
                if self.chaos.is_some() || self.fault_tolerance.is_some() {
                    return Err(Error::config(
                        "chaos/fault tolerance run in-process: use Backend::Threads (the process backend has its own kill_node injection)",
                    ));
                }
                let config = RuntimeConfig {
                    batch_compression: self.batch_compression,
                    ..RuntimeConfig::default()
                };
                let scope = self.metrics.as_ref().map(|s| {
                    s.with(&[
                        ("algorithm", &self.algorithm.label()),
                        ("strategy", self.strategy.label()),
                    ])
                });
                let instruments = Instruments {
                    tracer: self.tracer.as_ref(),
                    metrics: scope.as_ref(),
                    progress: self.telemetry.as_ref(),
                };
                let pcfg = PipelineConfig {
                    iterations: self.iterations,
                    window: self.window,
                };
                let RunOutcome { flows, report } = hipress_runtime::run_processes(
                    self.strategy,
                    self.algorithm,
                    self.partitions,
                    worker_grads,
                    self.seed,
                    &config,
                    &pcfg,
                    &self.process,
                    instruments,
                )?;
                Ok(SyncOutcome {
                    flows,
                    report: Some(report),
                })
            }
        }
    }
}

//! Cross-crate end-to-end tests: the full HiPress stack wired
//! together through the public facade.

use hipress::compll::algorithms;
use hipress::prelude::*;
use hipress::tensor::synth::{generate, GradientShape};
use hipress::tensor::Tensor;

/// DSL-compiled algorithms flow through the CaSync protocol with real
/// data: compile with CompLL, build a CaSync-Ring graph, execute it
/// over real tensors, and verify replica consistency — the complete
/// §4.3 "automated integration" story.
#[test]
fn compll_algorithm_through_casync_protocol() {
    use hipress::casync::interp::{gradient_flows, interpret};
    use hipress::casync::{CompressionSpec, GradPlan, IterationSpec, SyncGradient};

    let alg = algorithms::onebit().expect("DSL onebit compiles");
    let nodes = 4;
    let grads: Vec<Vec<Tensor>> = (0..nodes)
        .map(|w| {
            vec![generate(
                600,
                GradientShape::Gaussian { std_dev: 1.0 },
                w as u64,
            )]
        })
        .collect();
    let iter = IterationSpec {
        gradients: vec![SyncGradient {
            name: "g0".into(),
            bytes: 2400,
            ready_offset_ns: 0,
            plan: GradPlan {
                compress: true,
                partitions: 2,
            },
        }],
        compression: Some(CompressionSpec::of(&alg)),
    };
    let cluster = ClusterConfig::ec2(nodes);
    for strat in [Strategy::CaSyncPs, Strategy::CaSyncRing] {
        let graph = strat.build(&cluster, &iter).unwrap();
        let flows = gradient_flows(&grads);
        let out = interpret(&graph, nodes, &flows, Some(&alg), 5).unwrap();
        assert!(out[0].replicas_consistent(), "{strat:?}");
    }
}

/// The throughput simulation reproduces the paper's headline claim:
/// HiPress beats every baseline on a communication-intensive model,
/// and the margin grows with cluster size.
#[test]
fn hipress_margin_grows_with_cluster() {
    let model = DnnModel::BertLarge;
    let margin = |nodes: usize| {
        let cluster = ClusterConfig::ec2(nodes);
        let hip = simulate(&TrainingJob::hipress(model, cluster, Strategy::CaSyncPs))
            .unwrap()
            .throughput;
        let base = simulate(&TrainingJob::baseline(
            model,
            cluster.with_tcp(),
            Strategy::BytePs,
        ))
        .unwrap()
        .throughput;
        hip / base
    };
    let m4 = margin(4);
    let m16 = margin(16);
    assert!(m4 > 1.0, "HiPress must win at 4 nodes ({m4})");
    assert!(
        m16 >= m4,
        "the margin must not shrink with scale: {m4} -> {m16}"
    );
}

/// The planner's decisions actually pay off in the executor: running
/// VGG19 with planner plans beats both compress-everything-K1 and
/// compress-nothing.
#[test]
fn selective_plans_beat_naive_policies() {
    let cluster = ClusterConfig::ec2(8);
    let model = DnnModel::Vgg19;
    let planned = simulate(&TrainingJob::hipress(model, cluster, Strategy::CaSyncPs)).unwrap();
    let mut naive = TrainingJob::hipress(model, cluster, Strategy::CaSyncPs);
    naive.selective = false; // Compress everything, K = 1.
    let naive = simulate(&naive).unwrap();
    let raw = simulate(
        &TrainingJob::hipress(model, cluster, Strategy::CaSyncPs).with_algorithm(Algorithm::None),
    )
    .unwrap();
    assert!(
        planned.iteration_ns <= naive.iteration_ns,
        "planned {} vs naive {}",
        planned.iteration_ns,
        naive.iteration_ns
    );
    assert!(
        planned.iteration_ns < raw.iteration_ns,
        "planned {} vs raw {}",
        planned.iteration_ns,
        raw.iteration_ns
    );
}

/// Real convergence through the facade: compressed data-parallel
/// training reaches the uncompressed accuracy (Figure 13's claim),
/// with far less traffic.
#[test]
fn convergence_parity_with_less_traffic() {
    use hipress::train::convergence::{run_data_parallel, ConvergenceConfig};
    use hipress::train::nn::data::Classification;
    use hipress::train::nn::Mlp;

    let workers = 4;
    let full = Classification::gaussian_mixture(500 * workers + 600, 12, 5, 4.0, 21);
    let mut shards = full.split(workers + 1);
    let eval = shards.pop().unwrap();
    let run = |alg: Algorithm| {
        let mut reps: Vec<Mlp> = shards
            .iter()
            .map(|s| Mlp::new(&[12, 32, 5], s.clone(), 9))
            .collect();
        run_data_parallel(
            &ConvergenceConfig {
                workers,
                batch_per_worker: 24,
                lr: 0.05,
                momentum: 0.9,
                algorithm: alg,
                iterations: 150,
                eval_every: 10,
                seed: 4,
            },
            &mut reps,
            |m| m.data().len(),
            |m| m.accuracy(&eval),
        )
        .unwrap()
    };
    let baseline = run(Algorithm::None);
    let compressed = run(Algorithm::Dgc { rate: 0.05 });
    assert!(
        compressed.final_metric > baseline.final_metric - 0.05,
        "accuracy parity: {} vs {}",
        compressed.final_metric,
        baseline.final_metric
    );
    assert!(compressed.bytes_per_iteration < baseline.bytes_per_iteration / 4.0);
}

/// The full synchronization matrix, executed for real: for each
/// CaSync strategy and each of the five compression algorithms, both
/// the semantic interpreter and the CaSync-RT thread backend must
/// install byte-identical parameters on every replica — and the two
/// backends must agree with each other bit for bit.
#[test]
fn sync_matrix_replicas_identical_on_both_backends() {
    let nodes = 3;
    let workers: Vec<Vec<Tensor>> = (0..nodes)
        .map(|w| {
            vec![
                generate(1500, GradientShape::Gaussian { std_dev: 1.0 }, w as u64),
                generate(
                    333,
                    GradientShape::Gaussian { std_dev: 0.5 },
                    100 + w as u64,
                ),
            ]
        })
        .collect();
    for strategy in [Strategy::CaSyncPs, Strategy::CaSyncRing] {
        for alg in [
            Algorithm::OneBit,
            Algorithm::Tbq { tau: 0.05 },
            Algorithm::TernGrad { bitwidth: 2 },
            Algorithm::Dgc { rate: 0.001 },
            Algorithm::GradDrop { rate: 0.01 },
        ] {
            let build = || HiPress::new(strategy).algorithm(alg).partitions(2).seed(42);
            let sim = build()
                .backend(Backend::Simulator)
                .sync(&workers)
                .unwrap_or_else(|e| panic!("{strategy:?} × {} (sim): {e}", alg.label()));
            let rt = build()
                .backend(Backend::Threads(nodes))
                .sync(&workers)
                .unwrap_or_else(|e| panic!("{strategy:?} × {} (threads): {e}", alg.label()));
            for out in [&sim, &rt] {
                assert!(
                    out.replicas_consistent(),
                    "{strategy:?} × {}: replicas diverged",
                    alg.label()
                );
            }
            assert_eq!(sim.flows.len(), rt.flows.len());
            for (a, b) in sim.flows.iter().zip(&rt.flows) {
                assert_eq!(a.flow, b.flow);
                assert_eq!(
                    a.per_node,
                    b.per_node,
                    "{strategy:?} × {}: backends disagree",
                    alg.label()
                );
            }
            let report = rt.report.expect("thread backend measures");
            assert!(
                report.compression_savings() > 1.0,
                "{strategy:?} × {}: compression must shrink wire volume",
                alg.label()
            );
        }
    }
}

/// The same matrix across a real process boundary: for each CaSync
/// strategy and each of the five compression algorithms, three OS
/// processes synchronizing over a loopback TCP mesh must install the
/// same bytes as the in-process thread engine — and both must agree
/// with the semantic interpreter. The serialized wire protocol, the
/// framed fabric, and the coordinator's reassembly all sit between
/// the two runs, so agreement here certifies the whole stack.
#[test]
fn sync_matrix_survives_the_process_boundary() {
    let nodes = 3;
    let workers: Vec<Vec<Tensor>> = (0..nodes)
        .map(|w| {
            vec![
                generate(700, GradientShape::Gaussian { std_dev: 1.0 }, 50 + w as u64),
                generate(129, GradientShape::Gaussian { std_dev: 0.5 }, 90 + w as u64),
            ]
        })
        .collect();
    let pconf = ProcessConfig {
        binary: Some(env!("CARGO_BIN_EXE_hipress").into()),
        ..Default::default()
    };
    for strategy in [Strategy::CaSyncPs, Strategy::CaSyncRing] {
        for alg in [
            Algorithm::OneBit,
            Algorithm::Tbq { tau: 0.05 },
            Algorithm::TernGrad { bitwidth: 2 },
            Algorithm::Dgc { rate: 0.001 },
            Algorithm::GradDrop { rate: 0.01 },
        ] {
            let build = || HiPress::new(strategy).algorithm(alg).partitions(2).seed(31);
            let sim = build()
                .backend(Backend::Simulator)
                .sync(&workers)
                .unwrap_or_else(|e| panic!("{strategy:?} × {} (sim): {e}", alg.label()));
            let threads = build()
                .backend(Backend::Threads(nodes))
                .sync(&workers)
                .unwrap_or_else(|e| panic!("{strategy:?} × {} (threads): {e}", alg.label()));
            let procs = build()
                .backend(Backend::Processes(nodes))
                .process_config(pconf.clone())
                .sync(&workers)
                .unwrap_or_else(|e| panic!("{strategy:?} × {} (processes): {e}", alg.label()));
            assert!(
                procs.replicas_consistent(),
                "{strategy:?} × {}: process replicas diverged",
                alg.label()
            );
            for (label, other) in [("interpreter", &sim), ("threads", &threads)] {
                assert_eq!(procs.flows.len(), other.flows.len());
                for (a, b) in procs.flows.iter().zip(&other.flows) {
                    assert_eq!(a.flow, b.flow);
                    assert_eq!(
                        a.per_node,
                        b.per_node,
                        "{strategy:?} × {}: processes disagree with {label}",
                        alg.label()
                    );
                }
            }
            let report = procs.report.expect("process backend measures");
            assert!(
                report.fabric_frames > 0,
                "{strategy:?} × {}: TCP mesh must actually frame traffic",
                alg.label()
            );
            assert!(report.fabric_bytes_framed > report.fabric_bytes_payload);
        }
    }
}

/// Every (strategy × algorithm) combination simulates cleanly on a
/// small model — the generality claim (§3: "not tied to specific
/// algorithms and synchronization strategies").
#[test]
fn full_compatibility_matrix() {
    let cluster = ClusterConfig::local(4);
    for strat in Strategy::all() {
        for alg in [
            Algorithm::None,
            Algorithm::OneBit,
            Algorithm::Tbq { tau: 0.05 },
            Algorithm::TernGrad { bitwidth: 2 },
            Algorithm::Dgc { rate: 0.001 },
            Algorithm::GradDrop { rate: 0.01 },
        ] {
            let job = if strat.is_casync() {
                TrainingJob::hipress(DnnModel::ResNet50, cluster, strat).with_algorithm(alg)
            } else {
                TrainingJob::baseline(DnnModel::ResNet50, cluster, strat).with_algorithm(alg)
            };
            let r = simulate(&job)
                .unwrap_or_else(|e| panic!("{strat:?} × {} failed: {e}", alg.label()));
            assert!(r.throughput > 0.0, "{strat:?} × {}", alg.label());
        }
    }
}

/// Metrics through the facade: a `.metrics()`-instrumented sync on the
/// thread backend fills the registry with totals that agree with the
/// returned report, and every key carries the builder's `algorithm`
/// and `strategy` labels — so one registry can hold a whole matrix.
#[test]
fn facade_metrics_match_report() {
    use hipress::metrics::names;

    let nodes = 3;
    let workers: Vec<Vec<Tensor>> = (0..nodes)
        .map(|w| {
            vec![generate(
                1024,
                GradientShape::Gaussian { std_dev: 1.0 },
                w as u64,
            )]
        })
        .collect();
    let registry = Registry::new();
    let out = HiPress::new(Strategy::CaSyncPs)
        .algorithm(Algorithm::OneBit)
        .partitions(2)
        .seed(11)
        .backend(Backend::Threads(nodes))
        .metrics(&registry.root())
        .sync(&workers)
        .unwrap();
    let report = out.report.expect("thread backend measures");
    let snap = registry.snapshot();
    assert!(!snap.is_empty());
    assert_eq!(snap.total_counter(names::BYTES_WIRE), report.bytes_wire);
    assert_eq!(snap.total_counter(names::BYTES_RAW), report.bytes_raw);
    assert_eq!(snap.total_counter(names::MESSAGES), report.messages);
    for key in snap.keys() {
        assert_eq!(key.labels.get("algorithm"), Some("onebit"), "{key}");
        assert_eq!(key.labels.get("strategy"), Some("CaSync-PS"), "{key}");
    }
    // The simulator backend leaves the registry untouched.
    let untouched = Registry::new();
    HiPress::new(Strategy::CaSyncPs)
        .algorithm(Algorithm::OneBit)
        .metrics(&untouched.root())
        .sync(&workers)
        .unwrap();
    assert!(untouched.snapshot().is_empty());
}

/// Tracing through the facade: a traced `HiPress::sync` on the thread
/// backend yields a trace whose derived report matches the returned
/// one exactly, and a traced simulator run of the same plan exports a
/// comparable timeline that `TraceDiff` lines up category for
/// category.
#[test]
fn facade_tracing_spans_both_engines() {
    use hipress::trace::chrome;

    let nodes = 3;
    let workers: Vec<Vec<Tensor>> = (0..nodes)
        .map(|w| {
            vec![
                generate(2048, GradientShape::Gaussian { std_dev: 1.0 }, w as u64),
                generate(256, GradientShape::Gaussian { std_dev: 0.5 }, 7 + w as u64),
            ]
        })
        .collect();

    // Measured: CaSync-RT through the builder's .trace() hook.
    let rt_tracer = Tracer::new("casync-rt");
    let out = HiPress::new(Strategy::CaSyncRing)
        .algorithm(Algorithm::OneBit)
        .partitions(2)
        .seed(9)
        .backend(Backend::Threads(nodes))
        .trace(&rt_tracer)
        .sync(&workers)
        .unwrap();
    let report = out.report.expect("thread backend measures");
    let rt_trace = rt_tracer.finish();
    assert!(rt_trace.validate().is_ok());
    assert_eq!(RuntimeReport::from_trace(&rt_trace), report);

    // Simulated: the discrete-event executor over an equivalent plan.
    let sim_tracer = Tracer::new("sim");
    let iter = {
        use hipress::casync::{CompressionSpec, GradPlan, IterationSpec, SyncGradient};
        let c = Algorithm::OneBit.build().unwrap();
        IterationSpec {
            gradients: workers[0]
                .iter()
                .enumerate()
                .map(|(g, t)| SyncGradient {
                    name: format!("g{g}"),
                    bytes: t.byte_size(),
                    ready_offset_ns: 0,
                    plan: GradPlan {
                        compress: true,
                        partitions: 2,
                    },
                })
                .collect(),
            compression: Some(CompressionSpec::of(c.as_ref())),
        }
    };
    let cluster = ClusterConfig::ec2(nodes);
    let graph = Strategy::CaSyncRing.build(&cluster, &iter).unwrap();
    Executor::new(cluster, ExecConfig::hipress())
        .run_traced(&graph, &iter, &sim_tracer)
        .unwrap();
    let sim_trace = sim_tracer.finish();
    assert!(sim_trace.validate().is_ok());

    // Same protocol, same task graph: the per-primitive task counts
    // line up between the simulated and the measured timeline.
    let diff = TraceDiff::compare(&sim_trace, &rt_trace);
    for cat in ["encode", "decode", "merge", "update", "send", "recv"] {
        let d = diff
            .categories
            .iter()
            .find(|c| c.category == cat)
            .unwrap_or_else(|| panic!("category {cat} missing from diff"));
        assert!(
            d.counts_match(),
            "{cat}: {} vs {}",
            d.a.count(),
            d.b.count()
        );
    }

    // Both traces round-trip through the Chrome exporter.
    for trace in [&sim_trace, &rt_trace] {
        let back = chrome::import(&chrome::export(trace)).unwrap();
        assert_eq!(&back, trace);
    }
}

/// Degenerate pipeline configs are rejected at the facade boundary
/// with a structured `Error::Config` — on every backend, before any
/// thread or process spawns. A zero iteration count must not silently
/// run one iteration (the Threads backend's non-pipelined path would
/// otherwise do exactly that).
#[test]
fn facade_rejects_degenerate_pipeline_configs() {
    let workers: Vec<Vec<Tensor>> = (0..2)
        .map(|w| {
            vec![generate(
                256,
                GradientShape::Gaussian { std_dev: 1.0 },
                w as u64,
            )]
        })
        .collect();
    for backend in [
        Backend::Simulator,
        Backend::Threads(2),
        Backend::Processes(2),
    ] {
        for (iterations, window) in [(0, 1), (1, 0), (0, 0)] {
            let err = HiPress::new(Strategy::CaSyncRing)
                .backend(backend)
                .iterations(iterations)
                .pipeline_window(window)
                .sync(&workers)
                .expect_err("zero iterations/window must be rejected");
            assert!(
                matches!(err, hipress::util::Error::Config(_)),
                "want Error::Config, got {err:?}"
            );
        }
    }
}

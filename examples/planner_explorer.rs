//! Explore the selective compression and partitioning planner (§3.3):
//! per-gradient `<compress?, K>` decisions across sizes, strategies,
//! and cluster scales — Table 7 territory.
//!
//! ```text
//! cargo run --release --example planner_explorer
//! ```

use hipress::prelude::*;
use hipress::util::units::fmt_bytes;

fn main() {
    let sizes: [u64; 6] = [
        64 * 1024,
        1 << 20,
        4 << 20,
        16 << 20,
        128 << 20,
        392 << 20, // VGG19 fc6.
    ];
    for nodes in [4usize, 16] {
        println!("== {nodes} nodes, 100 Gbps, V100, onebit ==");
        println!(
            "{:<12} {:>22} {:>22}",
            "gradient", "CaSync-PS", "CaSync-Ring"
        );
        let ps = Planner::profile(
            &ClusterConfig::ec2(nodes),
            Strategy::CaSyncPs,
            Algorithm::OneBit,
        )
        .expect("profiling succeeds");
        let ring = Planner::profile(
            &ClusterConfig::ec2(nodes),
            Strategy::CaSyncRing,
            Algorithm::OneBit,
        )
        .expect("profiling succeeds");
        for &m in &sizes {
            let p = ps.plan_gradient(m);
            let r = ring.plan_gradient(m);
            let fmt = |plan: GradPlan| {
                format!(
                    "<{}, K={}>",
                    if plan.compress { "yes" } else { "no " },
                    plan.partitions
                )
            };
            println!("{:<12} {:>22} {:>22}", fmt_bytes(m), fmt(p), fmt(r));
        }
        println!(
            "compression threshold: PS {} / Ring {}\n",
            fmt_bytes(ps.compression_threshold()),
            fmt_bytes(ring.compression_threshold()),
        );
    }

    // How the decision shifts with bandwidth (the §3.3 argument that
    // the same model adapts to the environment).
    println!("== bandwidth sensitivity (16 nodes, CaSync-PS, onebit) ==");
    for (label, link) in [
        ("100 Gbps", LinkSpec::gbps100()),
        ("25 Gbps", LinkSpec::gbps25()),
        ("10 Gbps", LinkSpec::gbps10()),
    ] {
        let p = Planner::profile(
            &ClusterConfig::ec2(16).with_link(link),
            Strategy::CaSyncPs,
            Algorithm::OneBit,
        )
        .expect("profiling succeeds");
        println!(
            "{label:>9}: compress gradients above {}",
            fmt_bytes(p.compression_threshold())
        );
    }
}

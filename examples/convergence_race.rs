//! The Figure 13 experiment in miniature: real data-parallel training
//! with and without gradient compression, racing to a target metric
//! on a simulated-cluster clock.
//!
//! ```text
//! cargo run --release --example convergence_race
//! ```

use hipress::compress::Algorithm;
use hipress::train::convergence::{run_data_parallel, ConvergenceConfig};
use hipress::train::nn::data::Classification;
use hipress::train::nn::Mlp;

fn main() {
    let workers = 8;
    let full = Classification::gaussian_mixture(800 * workers + 1000, 16, 10, 4.0, 77);
    let mut shards = full.split(workers + 1);
    let eval = shards.pop().unwrap();

    // Per-iteration wall-clock cost (arbitrary but consistent units):
    // compute is fixed; synchronization scales with transmitted bytes
    // over a slow interconnect, which is where compression pays.
    let compute_ms = 10.0;
    let net_bytes_per_ms = 400_000.0;

    println!(
        "{:<22} {:>9} {:>12} {:>12} {:>14}",
        "algorithm", "accuracy", "iters@85%", "ms/iter", "time-to-85%"
    );
    for alg in [
        Algorithm::None,
        Algorithm::TernGrad { bitwidth: 2 },
        Algorithm::Dgc { rate: 0.01 },
    ] {
        let mut replicas: Vec<Mlp> = shards
            .iter()
            .map(|shard| Mlp::new(&[16, 64, 32, 10], shard.clone(), 42))
            .collect();
        let cfg = ConvergenceConfig {
            workers,
            batch_per_worker: 32,
            lr: 0.05,
            momentum: 0.9,
            algorithm: alg,
            iterations: 240,
            eval_every: 10,
            seed: 3,
        };
        let r = run_data_parallel(
            &cfg,
            &mut replicas,
            |m| m.data().len(),
            |m| m.accuracy(&eval),
        )
        .expect("training runs");
        let ms_per_iter = compute_ms + r.bytes_per_iteration / net_bytes_per_ms;
        let to_target = r.iterations_to_target(0.85, true);
        println!(
            "{:<22} {:>8.1}% {:>12} {:>11.2} {:>13}",
            alg.label(),
            r.final_metric * 100.0,
            to_target
                .map(|i| i.to_string())
                .unwrap_or_else(|| "-".into()),
            ms_per_iter,
            to_target
                .map(|i| format!("{:.0} ms", i as f64 * ms_per_iter))
                .unwrap_or_else(|| "-".into()),
        );
    }
    println!("\nCompression needs similar iteration counts but far cheaper iterations —");
    println!("the Figure 13 effect: same accuracy, less wall-clock time.");
}

//! Develop a brand-new gradient compression algorithm in the CompLL
//! DSL and integrate it into the framework — the §4 workflow, end to
//! end, with zero manual integration code.
//!
//! The algorithm here is a "top-magnitude + sign" hybrid not in the
//! paper: keep the top 1% by magnitude, but transmit only their signs
//! and a shared scale (a DGC/onebit blend).
//!
//! ```text
//! cargo run --release --example custom_algorithm
//! ```

use hipress::compll::ops::Value;
use hipress::compll::{param_values, CompiledAlgorithm};
use hipress::prelude::*;
use hipress::tensor::synth::{generate, GradientShape};

const TOPSIGN_DSL: &str = r#"
param TopSignParams { float rate; }
float threshold;
float scale;
float absf(float x) { return abs(x); }
uint1 keep(float x) {
    if (abs(x) >= threshold) { return 1; }
    return 0;
}
uint1 signOf(float x) {
    if (x > 0) { return 1; }
    return 0;
}
float unsign(uint1 q) {
    if (q == 1) { return scale; }
    return -scale;
}
void encode(float* gradient, uint8* compressed, TopSignParams params) {
    if (gradient.size == 0) {
        compressed = concat(0);
        return;
    }
    int32 k = ceil(gradient.size * params.rate);
    if (k < 1) { k = 1; }
    if (k > gradient.size) { k = gradient.size; }
    float* mags = map(gradient, absf);
    float* sorted = sort(mags, greater);
    threshold = sorted[k - 1];
    int32* I = filter_idx(gradient, keep);
    float* V = gather(gradient, I);
    float* vm = map(V, absf);
    scale = 0.0;
    if (vm.size > 0) { scale = reduce(vm, sum) / vm.size; }
    uint1* S = map(V, signOf);
    compressed = concat(I.size, scale, I, S);
}
void decode(uint8* compressed, float* gradient, TopSignParams params) {
    int32 count = extract(compressed);
    scale = extract(compressed);
    int32* I = extract(compressed, count);
    uint1* S = extract(compressed, count);
    float* V = map(S, unsign);
    gradient = scatter(I, V, gradient.size);
}
"#;

fn main() {
    // 1. Compile: lex → parse → type-check.
    let alg = CompiledAlgorithm::new(
        "topsign",
        TOPSIGN_DSL,
        param_values(&[("rate", Value::F(0.01))]),
    )
    .expect("the DSL program compiles");

    // 2. Inspect what CompLL generated.
    let report = alg.loc_report();
    println!(
        "topsign: {} DSL lines ({} logic + {} udf), operators: {:?}",
        report.total(),
        report.logic,
        report.udf,
        report.operators
    );
    let cuda = alg.cuda_source();
    println!(
        "generated CUDA: {} lines (excerpt below)\n",
        cuda.lines().count()
    );
    for line in cuda.lines().take(12) {
        println!("    {line}");
    }

    // 3. It is immediately a working compressor.
    let grad = generate(100_000, GradientShape::default_dnn(), 7);
    let stream = alg.encode(grad.as_slice(), 1);
    let decoded = alg.decode(&stream).expect("own stream decodes");
    let survivors = decoded.iter().filter(|&&x| x != 0.0).count();
    println!(
        "\n100k-element gradient -> {} bytes ({:.2}% of fp32), {} survivors",
        stream.len(),
        stream.len() as f64 / (grad.byte_size() as f64) * 100.0,
        survivors
    );

    // 4. And it integrates into data parallel training with error
    // feedback, through the same interfaces as the built-in five.
    use hipress::compress::ErrorFeedback;
    let mut fb = ErrorFeedback::new();
    let mut residual_norm = 0.0;
    for iter in 0..5u64 {
        let g = generate(10_000, GradientShape::default_dnn(), 100 + iter);
        let s = fb.encode("layer0", g.as_slice(), &alg, iter);
        let _ = alg.decode(&s).unwrap();
        residual_norm = fb
            .residual("layer0")
            .unwrap()
            .iter()
            .map(|&x| (x as f64).powi(2))
            .sum::<f64>()
            .sqrt();
    }
    println!("error-feedback residual norm after 5 iterations: {residual_norm:.4}");
}

//! Quickstart: simulate HiPress against the baselines on one model.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use hipress::prelude::*;

fn main() {
    let cluster = ClusterConfig::ec2(16); // 16 nodes × 8 V100, 100 Gbps.
    let model = DnnModel::Vgg19;

    println!(
        "Training {} on {} GPUs ({} nodes):\n",
        model.name(),
        cluster.total_gpus(),
        cluster.nodes
    );
    println!(
        "{:<34} {:>12} {:>10} {:>8}",
        "system", "samples/s", "scaling", "comm%"
    );

    let configs: Vec<(&str, TrainingJob)> = vec![
        (
            "Ring (no compression)",
            TrainingJob::baseline(model, cluster, Strategy::HorovodRing),
        ),
        (
            "BytePS (no compression)",
            TrainingJob::baseline(model, cluster.with_tcp(), Strategy::BytePs),
        ),
        (
            "BytePS(OSS-onebit)",
            TrainingJob::baseline(model, cluster.with_tcp(), Strategy::BytePs)
                .with_algorithm(Algorithm::OneBit),
        ),
        (
            "HiPress-CaSync-PS(CompLL-onebit)",
            TrainingJob::hipress(model, cluster, Strategy::CaSyncPs),
        ),
        (
            "HiPress-CaSync-Ring(CompLL-onebit)",
            TrainingJob::hipress(model, cluster, Strategy::CaSyncRing),
        ),
    ];

    let mut best_baseline: f64 = 0.0;
    let mut hipress_best: f64 = 0.0;
    for (name, job) in configs {
        let r = simulate(&job).expect("simulation runs");
        println!(
            "{:<34} {:>12.0} {:>10.2} {:>7.0}%",
            name,
            r.throughput,
            r.scaling_efficiency,
            r.comm_ratio * 100.0
        );
        if name.starts_with("HiPress") {
            hipress_best = hipress_best.max(r.throughput);
        } else {
            best_baseline = best_baseline.max(r.throughput);
        }
    }
    println!(
        "\nHiPress speedup over the best baseline: {:.1}%",
        (hipress_best / best_baseline - 1.0) * 100.0
    );
}

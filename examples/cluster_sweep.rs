//! Figure 7/8-style sweep: throughput of every system as the cluster
//! grows from 8 to 128 GPUs, for one model.
//!
//! ```text
//! cargo run --release --example cluster_sweep [model]
//! ```

use hipress::prelude::*;

fn main() {
    let model = std::env::args()
        .nth(1)
        .and_then(|n| DnnModel::by_name(&n))
        .unwrap_or(DnnModel::BertLarge);

    println!(
        "Weak-scaling sweep for {} (V100 x8 per node, 100 Gbps):\n",
        model.name()
    );
    println!(
        "{:>5} {:>12} {:>12} {:>16} {:>16} {:>16}",
        "GPUs", "BytePS", "Ring", "BytePS(onebit)", "HiPress-PS", "HiPress-Ring"
    );
    for nodes in [1usize, 2, 4, 8, 16] {
        let cluster = ClusterConfig::ec2(nodes);
        let gpus = cluster.total_gpus();
        if nodes == 1 {
            // Single node: no inter-node synchronization; all systems
            // run at compute speed.
            let t = model.spec().compute(GpuClass::V100).single_gpu_throughput() * gpus as f64;
            println!(
                "{:>5} {:>12.0} {:>12.0} {:>16.0} {:>16.0} {:>16.0}",
                gpus, t, t, t, t, t
            );
            continue;
        }
        let run = |job: TrainingJob| simulate(&job).expect("simulation runs").throughput;
        let byteps = run(TrainingJob::baseline(
            model,
            cluster.with_tcp(),
            Strategy::BytePs,
        ));
        let ring = run(TrainingJob::baseline(model, cluster, Strategy::HorovodRing));
        let byteps_onebit = run(
            TrainingJob::baseline(model, cluster.with_tcp(), Strategy::BytePs)
                .with_algorithm(Algorithm::OneBit),
        );
        let hipress_ps = run(TrainingJob::hipress(model, cluster, Strategy::CaSyncPs));
        let hipress_ring = run(TrainingJob::hipress(model, cluster, Strategy::CaSyncRing));
        println!(
            "{:>5} {:>12.0} {:>12.0} {:>16.0} {:>16.0} {:>16.0}",
            gpus, byteps, ring, byteps_onebit, hipress_ps, hipress_ring
        );
    }
    println!("\n(HiPress's margin grows with the cluster — the paper's key scaling observation.)");
}

//! CaSync-RT demo: synchronize real gradients across OS threads with
//! and without compression, print measured wall-clock reports, and
//! render each run's per-node utilization timeline (Figure-9 style)
//! from its trace.
//!
//! ```sh
//! cargo run --release --example runtime_demo
//! ```

use hipress::prelude::*;
use hipress::tensor::synth::{generate, GradientShape};
use hipress::tensor::Tensor;
use hipress::trace::view;

fn main() {
    let nodes = 4;
    let sizes = [1usize << 20, 1 << 17, 50_000];
    let workers: Vec<Vec<Tensor>> = (0..nodes)
        .map(|w| {
            sizes
                .iter()
                .enumerate()
                .map(|(g, &n)| {
                    generate(
                        n,
                        GradientShape::Gaussian { std_dev: 1.0 },
                        (w * 100 + g) as u64,
                    )
                })
                .collect()
        })
        .collect();
    let mib = sizes.iter().sum::<usize>() as f64 * 4.0 / (1 << 20) as f64;
    println!("CaSync-RT: {nodes} node threads syncing {mib:.1} MiB of gradients each\n");

    let run = |label: &str, alg: Algorithm| -> RuntimeReport {
        let tracer = Tracer::new("casync-rt");
        let out = HiPress::new(Strategy::CaSyncRing)
            .algorithm(alg)
            .partitions(4)
            .backend(Backend::Threads(nodes))
            .trace(&tracer)
            .sync(&workers)
            .expect("sync succeeds");
        assert!(out.replicas_consistent(), "replicas must be identical");
        let report = out.report.expect("thread backend reports");
        println!("=== {label} ===\n{report}");
        // Where the time went, per node thread, from the same run.
        println!("{}", view::utilization_bars(&tracer.finish(), 56));
        report
    };

    let raw = run("uncompressed (CaSync-Ring)", Algorithm::None);
    let cmp = run("onebit (CaSync-Ring)", Algorithm::OneBit);
    println!(
        "onebit moved {:.1}x fewer bytes; wall clock {:.2}x vs uncompressed \
         (in-process channels have no bandwidth limit, so codec time is all \
         cost and no win here — on a real wire the byte reduction is the win)",
        raw.bytes_wire as f64 / cmp.bytes_wire as f64,
        cmp.speedup_vs(&raw)
    );
}
